module Clock = Rrs_obs.Clock

type task = {
  key : string;
  policy : (module Policy.POLICY);
  n : int;
  speed : int;
  instance : Instance.t;
  sink : Event_sink.t;
}

type outcome = {
  key : string;
  n : int;
  delta : int;
  cost : int;
  reconfig_count : int;
  drop_count : int;
  exec_count : int;
  wall_s : float;
  stats : (string * int) list;
}

type domain_load = { domain : int; tasks : int; busy_s : float }

type profiled = {
  outcomes : outcome list;
  domains : int;
  wall_s : float;
  loads : domain_load list;
}

let task ?(speed = 1) ?(sink = Event_sink.Null) ~key ~policy ~n instance =
  { key; policy; n; speed; instance; sink }

let default_domains () = max 1 (Domain.recommended_domain_count ())

(* Striped assignment: worker [d] owns indices congruent to [d], so every
   slot of [results] (and of the per-stripe load accounting) has exactly
   one writer and the merge is just reading the arrays in index
   (= submission) order. *)
let map_striped ~domains f items =
  let len = Array.length items in
  if len = 0 then ([||], [||])
  else begin
    let domains = max 1 (min domains len) in
    let results = Array.make len None in
    let loads = Array.init domains (fun d -> { domain = d; tasks = 0; busy_s = 0.0 }) in
    let work stripe () =
      let count = ref 0 and busy = ref 0.0 in
      let i = ref stripe in
      while !i < len do
        let t0 = Clock.now_s () in
        results.(!i) <- Some (f items.(!i));
        busy := !busy +. Clock.elapsed_s t0;
        incr count;
        i := !i + domains
      done;
      loads.(stripe) <- { domain = stripe; tasks = !count; busy_s = !busy }
    in
    if domains = 1 then work 0 ()
    else begin
      let workers =
        Array.init (domains - 1) (fun d -> Domain.spawn (work (d + 1)))
      in
      let main_error = try work 0 (); None with e -> Some e in
      (* Join every worker before re-raising so no domain leaks. *)
      let worker_error =
        Array.fold_left
          (fun acc worker ->
            match (try Domain.join worker; None with e -> Some e) with
            | None -> acc
            | Some _ as error -> if acc = None then error else acc)
          None workers
      in
      match main_error, worker_error with
      | Some e, _ | None, Some e -> raise e
      | None, None -> ()
    end;
    ( Array.map
        (function Some r -> r | None -> failwith "Sweep.map: missing result")
        results,
      loads )
  end

let map ?(domains = default_domains ()) f items =
  fst (map_striped ~domains f items)

let run_task { key; policy; n; speed; instance; sink } =
  let t0 = Clock.now_s () in
  let result = Engine.run ~speed ~record_events:false ~sink ~n ~policy instance in
  let wall_s = Clock.elapsed_s t0 in
  {
    key;
    n;
    delta = instance.Instance.delta;
    cost = Ledger.total_cost result.ledger;
    reconfig_count = Ledger.reconfig_count result.ledger;
    drop_count = Ledger.drop_count result.ledger;
    exec_count = Ledger.exec_count result.ledger;
    wall_s;
    stats = result.stats;
  }

let run ?domains tasks =
  Array.to_list (map ?domains run_task (Array.of_list tasks))

let run_profiled ?(domains = default_domains ()) tasks =
  let t0 = Clock.now_s () in
  let results, loads = map_striped ~domains run_task (Array.of_list tasks) in
  let wall_s = Clock.elapsed_s t0 in
  {
    outcomes = Array.to_list results;
    domains = Array.length loads;
    wall_s;
    loads = Array.to_list loads;
  }
