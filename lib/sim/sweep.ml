module Clock = Rrs_obs.Clock

type task = {
  key : string;
  policy : (module Policy.POLICY);
  n : int;
  speed : int;
  instance : Instance.t;
  sink : Event_sink.t;
  faults : Fault.plan option;
}

type outcome = {
  key : string;
  n : int;
  delta : int;
  cost : int;
  reconfig_count : int;
  drop_count : int;
  exec_count : int;
  wall_s : float;
  stats : (string * int) list;
}

type failure = {
  key : string;
  exn_text : string;
  backtrace : string;
  attempts : int;
}

type domain_load = { domain : int; tasks : int; busy_s : float }

type profiled = {
  outcomes : outcome list;
  failures : failure list;
  domains : int;
  wall_s : float;
  loads : domain_load list;
}

let task ?(speed = 1) ?(sink = Event_sink.Null) ?faults ~key ~policy ~n
    instance =
  { key; policy; n; speed; instance; sink; faults }

let default_domains () = max 1 (Domain.recommended_domain_count ())

(* Striped assignment: worker [d] owns indices congruent to [d], so every
   slot of [results] (and of the per-stripe load accounting) has exactly
   one writer and the merge is just reading the arrays in index
   (= submission) order. [f] must not raise: a dying worker would leave
   every remaining slot of its stripe empty, losing which task failed —
   callers wrap [f] with [capture] or return a result themselves. *)
let map_striped ~domains f items =
  let len = Array.length items in
  if len = 0 then ([||], [||])
  else begin
    let domains = max 1 (min domains len) in
    let results = Array.make len None in
    let loads = Array.init domains (fun d -> { domain = d; tasks = 0; busy_s = 0.0 }) in
    let work stripe () =
      let count = ref 0 and busy = ref 0.0 in
      let i = ref stripe in
      while !i < len do
        let t0 = Clock.now_s () in
        results.(!i) <- Some (f items.(!i));
        busy := !busy +. Clock.elapsed_s t0;
        incr count;
        i := !i + domains
      done;
      loads.(stripe) <- { domain = stripe; tasks = !count; busy_s = !busy }
    in
    if domains = 1 then work 0 ()
    else begin
      let workers =
        Array.init (domains - 1) (fun d -> Domain.spawn (work (d + 1)))
      in
      let main_error = try work 0 (); None with e -> Some e in
      (* Join every worker before re-raising so no domain leaks. *)
      let worker_error =
        Array.fold_left
          (fun acc worker ->
            match (try Domain.join worker; None with e -> Some e) with
            | None -> acc
            | Some _ as error -> if acc = None then error else acc)
          None workers
      in
      match main_error, worker_error with
      | Some e, _ | None, Some e -> raise e
      | None, None -> ()
    end;
    ( Array.map
        (function Some r -> r | None -> failwith "Sweep.map: missing result")
        results,
      loads )
  end

(* Per-item exception isolation: the worker survives and every other slot
   of its stripe still gets computed. *)
let capture f x =
  try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ())

let map ?(domains = default_domains ()) f items =
  let results, _ = map_striped ~domains (capture f) items in
  (* Re-raise the lowest-index failure with its original backtrace, as if
     [f] had been applied sequentially. *)
  Array.map
    (function
      | Ok v -> v
      | Error (e, backtrace) -> Printexc.raise_with_backtrace e backtrace)
    results

let run_task { key; policy; n; speed; instance; sink; faults } =
  let t0 = Clock.now_s () in
  let result =
    Engine.run ~speed ~record_events:false ~sink ?faults ~n ~policy instance
  in
  let wall_s = Clock.elapsed_s t0 in
  {
    key;
    n;
    delta = instance.Instance.delta;
    cost = Ledger.total_cost result.ledger;
    reconfig_count = Ledger.reconfig_count result.ledger;
    drop_count = Ledger.drop_count result.ledger;
    exec_count = Ledger.exec_count result.ledger;
    wall_s;
    stats = result.stats;
  }

(* Retries are for transient sink IO ([Sys_error]: disk full, closed
   descriptor, NFS hiccup) — the engine itself is deterministic, so any
   other exception would fail identically on every attempt. *)
let run_one ?(retries = 1) task =
  let rec go attempt =
    match run_task task with
    | outcome -> Ok outcome
    | exception Sys_error _ when attempt <= retries -> go (attempt + 1)
    | exception e ->
        Error
          {
            key = task.key;
            exn_text = Printexc.to_string e;
            backtrace =
              Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ());
            attempts = attempt;
          }
  in
  go 1

let run_results ?domains ?retries tasks =
  Array.to_list (map ?domains (run_one ?retries) (Array.of_list tasks))

let run ?domains tasks =
  List.map
    (function
      | Ok outcome -> outcome
      | Error { key; exn_text; _ } ->
          failwith (Printf.sprintf "Sweep.run: task %s failed: %s" key exn_text))
    (run_results ?domains tasks)

let run_profiled ?(domains = default_domains ()) ?retries tasks =
  let t0 = Clock.now_s () in
  let results, loads =
    map_striped ~domains (run_one ?retries) (Array.of_list tasks)
  in
  let wall_s = Clock.elapsed_s t0 in
  let outcomes, failures =
    Array.fold_right
      (fun r (oks, errs) ->
        match r with
        | Ok o -> (o :: oks, errs)
        | Error f -> (oks, f :: errs))
      results ([], [])
  in
  { outcomes; failures; domains = Array.length loads; wall_s;
    loads = Array.to_list loads }
