type task = {
  key : string;
  policy : (module Policy.POLICY);
  n : int;
  speed : int;
  instance : Instance.t;
}

type outcome = {
  key : string;
  n : int;
  delta : int;
  cost : int;
  reconfig_count : int;
  drop_count : int;
  exec_count : int;
  wall_s : float;
  stats : (string * int) list;
}

let task ?(speed = 1) ~key ~policy ~n instance =
  { key; policy; n; speed; instance }

let default_domains () = max 1 (Domain.recommended_domain_count ())

let map ?(domains = default_domains ()) f items =
  let len = Array.length items in
  if len = 0 then [||]
  else begin
    let domains = max 1 (min domains len) in
    let results = Array.make len None in
    (* Striped assignment: worker [d] owns indices congruent to [d], so
       every slot of [results] has exactly one writer and the merge is
       just reading the array in index (= submission) order. *)
    let work stripe () =
      let i = ref stripe in
      while !i < len do
        results.(!i) <- Some (f items.(!i));
        i := !i + domains
      done
    in
    if domains = 1 then work 0 ()
    else begin
      let workers =
        Array.init (domains - 1) (fun d -> Domain.spawn (work (d + 1)))
      in
      let main_error = try work 0 (); None with e -> Some e in
      (* Join every worker before re-raising so no domain leaks. *)
      let worker_error =
        Array.fold_left
          (fun acc worker ->
            match (try Domain.join worker; None with e -> Some e) with
            | None -> acc
            | Some _ as error -> if acc = None then error else acc)
          None workers
      in
      match main_error, worker_error with
      | Some e, _ | None, Some e -> raise e
      | None, None -> ()
    end;
    Array.map
      (function Some r -> r | None -> failwith "Sweep.map: missing result")
      results
  end

let run_task { key; policy; n; speed; instance } =
  let t0 = Unix.gettimeofday () in
  let result = Engine.run ~speed ~record_events:false ~n ~policy instance in
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    key;
    n;
    delta = instance.Instance.delta;
    cost = Ledger.total_cost result.ledger;
    reconfig_count = Ledger.reconfig_count result.ledger;
    drop_count = Ledger.drop_count result.ledger;
    exec_count = Ledger.exec_count result.ledger;
    wall_s;
    stats = result.stats;
  }

let run ?domains tasks =
  Array.to_list (map ?domains run_task (Array.of_list tasks))
