(** Multicore sweep runner: fan independent engine runs across domains.

    A sweep is a grid of (policy x workload x n) tasks, each fully
    self-contained: the task owns its instance (generated from an explicit
    per-run seed by the caller) and a fresh policy/pool/ledger is built
    inside the worker domain, so runs share no mutable state. Results are
    merged back in submission order, which makes the output — including
    every per-run ledger total — byte-identical whatever the domain
    count. Wall clocks come from the monotonic {!Rrs_obs.Clock}. *)

type task = {
  key : string; (* stable identifier, e.g. "dlru-edf/uniform-0.9/seed=3/n=16" *)
  policy : (module Policy.POLICY);
  n : int;
  speed : int;
  instance : Instance.t;
  sink : Event_sink.t; (* per-task event sink; [Null] unless streaming *)
}

type outcome = {
  key : string;
  n : int;
  delta : int;
  cost : int;
  reconfig_count : int;
  drop_count : int;
  exec_count : int;
  wall_s : float; (* per-run wall clock, the only nondeterministic field *)
  stats : (string * int) list;
}

(** Per-domain accounting of a profiled run. [busy_s / wall_s] of the
    enclosing {!profiled} is the domain's utilization. *)
type domain_load = { domain : int; tasks : int; busy_s : float }

type profiled = {
  outcomes : outcome list; (* submission order, as {!run} *)
  domains : int; (* actual worker count after clamping *)
  wall_s : float; (* whole-sweep wall clock *)
  loads : domain_load list; (* one per worker domain *)
}

(** [task ?speed ?sink ~key ~policy ~n instance] packs one run. [sink]
    (default [Null]) receives the run's event stream; give each task its
    own sink — sinks are not synchronized across domains. *)
val task :
  ?speed:int ->
  ?sink:Event_sink.t ->
  key:string ->
  policy:(module Policy.POLICY) ->
  n:int ->
  Instance.t ->
  task

(** The runtime's recommended domain count (at least 1). *)
val default_domains : unit -> int

(** [map ~domains f items] applies [f] to every element, striping items
    across [domains] worker domains ([domains <= 1] runs sequentially in
    the calling domain). The result array is in input order regardless of
    completion order. [f] must not touch shared mutable state. An
    exception in any worker is re-raised after all domains join. *)
val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [run ~domains tasks] executes every task ([record_events] off unless
    the task carries a sink) and returns the outcomes in submission
    order. *)
val run : ?domains:int -> task list -> outcome list

(** [run_profiled ~domains tasks] is {!run} plus whole-sweep wall clock
    and per-domain (tasks, busy seconds) accounting. *)
val run_profiled : ?domains:int -> task list -> profiled
