(** Multicore sweep runner: fan independent engine runs across domains.

    A sweep is a grid of (policy x workload x n) tasks, each fully
    self-contained: the task owns its instance (generated from an explicit
    per-run seed by the caller) and a fresh policy/pool/ledger is built
    inside the worker domain, so runs share no mutable state. Results are
    merged back in submission order, which makes the output — including
    every per-run ledger total — byte-identical whatever the domain
    count. Wall clocks come from the monotonic {!Rrs_obs.Clock}.

    Failure isolation: one task raising (a buggy policy, a sink whose
    disk filled) never takes down the sweep. Exceptions are caught
    per-task inside the worker, so the rest of the stripe still runs, and
    {!run_results} reports exactly which key failed, with the exception
    text and backtrace. Transient sink IO errors ([Sys_error]) get a
    bounded number of retries; nothing else is retried — engine runs are
    deterministic, so any other exception would fail identically. *)

type task = {
  key : string; (* stable identifier, e.g. "dlru-edf/uniform-0.9/seed=3/n=16" *)
  policy : (module Policy.POLICY);
  n : int;
  speed : int;
  instance : Instance.t;
  sink : Event_sink.t; (* per-task event sink; [Null] unless streaming *)
  faults : Fault.plan option; (* injected fault plan, pure data per task *)
}

type outcome = {
  key : string;
  n : int;
  delta : int;
  cost : int;
  reconfig_count : int;
  drop_count : int;
  exec_count : int;
  wall_s : float; (* per-run wall clock, the only nondeterministic field *)
  stats : (string * int) list;
}

(** One task's terminal failure, after any retries. *)
type failure = {
  key : string; (* the task's key — failures are attributable *)
  exn_text : string; (* [Printexc.to_string] of the last exception *)
  backtrace : string;
  attempts : int; (* total attempts made, retries included *)
}

(** Per-domain accounting of a profiled run. [busy_s / wall_s] of the
    enclosing {!profiled} is the domain's utilization. *)
type domain_load = { domain : int; tasks : int; busy_s : float }

type profiled = {
  outcomes : outcome list; (* successes, submission order *)
  failures : failure list; (* terminal failures, submission order *)
  domains : int; (* actual worker count after clamping *)
  wall_s : float; (* whole-sweep wall clock *)
  loads : domain_load list; (* one per worker domain *)
}

(** [task ?speed ?sink ?faults ~key ~policy ~n instance] packs one run.
    [sink] (default [Null]) receives the run's event stream; give each
    task its own sink — sinks are not synchronized across domains.
    [faults] injects a deterministic fault plan (pure data, so faulted
    sweeps stay byte-identical across domain counts). *)
val task :
  ?speed:int ->
  ?sink:Event_sink.t ->
  ?faults:Fault.plan ->
  key:string ->
  policy:(module Policy.POLICY) ->
  n:int ->
  Instance.t ->
  task

(** The runtime's recommended domain count (at least 1). *)
val default_domains : unit -> int

(** [map ~domains f items] applies [f] to every element, striping items
    across [domains] worker domains ([domains <= 1] runs sequentially in
    the calling domain). The result array is in input order regardless of
    completion order. [f] must not touch shared mutable state. An
    exception from [f] is captured per-item (other items still run) and
    the lowest-index one is re-raised — with its original backtrace —
    after all domains join, as if [f] had been applied sequentially. *)
val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [run_results ~domains ~retries tasks] executes every task and returns,
    in submission order, [Ok outcome] or [Error failure] per task — one
    crashing task never loses the others. [Sys_error] (transient sink IO)
    is retried up to [retries] extra times (default 1, immediately — no
    backoff clock, keeping sweeps deterministic); any other exception
    fails the task on first raise. *)
val run_results :
  ?domains:int -> ?retries:int -> task list -> (outcome, failure) result list

(** [run ~domains tasks] is {!run_results} for sweeps expected to be
    all-green: outcomes in submission order.
    @raise Failure naming the first failing task's key. *)
val run : ?domains:int -> task list -> outcome list

(** [run_profiled ~domains tasks] is {!run_results} plus whole-sweep wall
    clock and per-domain (tasks, busy seconds) accounting; successes and
    failures are split out. *)
val run_profiled : ?domains:int -> ?retries:int -> task list -> profiled
