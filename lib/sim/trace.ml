let to_string (instance : Instance.t) =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "rrs-trace v1\n";
  Buffer.add_string buffer (Printf.sprintf "name %s\n" instance.name);
  Buffer.add_string buffer (Printf.sprintf "delta %d\n" instance.delta);
  Buffer.add_string buffer "bounds";
  Array.iter (fun d -> Buffer.add_string buffer (Printf.sprintf " %d" d)) instance.bounds;
  Buffer.add_char buffer '\n';
  List.iter
    (fun (round, request) ->
      Buffer.add_string buffer (Printf.sprintf "arrival %d" round);
      List.iter
        (fun (color, count) ->
          Buffer.add_string buffer (Printf.sprintf " %d:%d" color count))
        request;
      Buffer.add_char buffer '\n')
    (Instance.nonempty_arrivals instance);
  Buffer.add_string buffer "end\n";
  Buffer.contents buffer

type parse_state = {
  mutable name : string;
  mutable delta : int option;
  mutable bounds : int array option;
  mutable arrivals : (int * Types.request) list;
  mutable finished : bool;
}

let parse_pair token =
  match String.split_on_char ':' token with
  | [ color; count ] -> (
      match (int_of_string_opt color, int_of_string_opt count) with
      | Some c, Some k -> Ok (c, k)
      | _ -> Error (Printf.sprintf "bad color:count pair %S" token))
  | _ -> Error (Printf.sprintf "bad color:count pair %S" token)

let of_string text =
  let state =
    { name = "trace"; delta = None; bounds = None; arrivals = []; finished = false }
  in
  let lines = String.split_on_char '\n' text in
  let error = ref None in
  let fail lineno message =
    if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno message)
  in
  List.iteri
    (fun index line ->
      let lineno = index + 1 in
      let line =
        match String.index_opt line '#' with
        | None -> line
        | Some i -> String.sub line 0 i
      in
      let tokens =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun token -> token <> "")
      in
      if !error = None then
        if state.finished then begin
          (* Directives after [end] signal a corrupt or concatenated
             file; accepting them would silently mis-parse it. *)
          match tokens with
          | [] -> ()
          | token :: _ ->
              fail lineno (Printf.sprintf "directive %S after end" token)
        end
        else
        match tokens with
        | [] -> ()
        | [ "rrs-trace"; "v1" ] -> ()
        | "name" :: rest -> state.name <- String.concat " " rest
        | [ "delta"; value ] -> (
            if state.delta <> None then fail lineno "duplicate delta"
            else
              match int_of_string_opt value with
              | Some d -> state.delta <- Some d
              | None -> fail lineno "bad delta")
        | "bounds" :: rest ->
            if state.bounds <> None then fail lineno "duplicate bounds"
            else
              let bounds = List.filter_map int_of_string_opt rest in
              if List.length bounds <> List.length rest then fail lineno "bad bounds"
              else state.bounds <- Some (Array.of_list bounds)
        | "arrival" :: round :: pairs -> (
            match int_of_string_opt round with
            | None -> fail lineno "bad arrival round"
            | Some round ->
                let parsed = List.map parse_pair pairs in
                let request =
                  List.filter_map (function Ok pair -> Some pair | Error _ -> None)
                    parsed
                in
                List.iter
                  (function Error message -> fail lineno message | Ok _ -> ())
                  parsed;
                state.arrivals <- (round, request) :: state.arrivals)
        | [ "end" ] -> state.finished <- true
        | token :: _ -> fail lineno (Printf.sprintf "unknown directive %S" token))
    lines;
  match !error with
  | Some message -> Error message
  | None -> (
      match (state.delta, state.bounds) with
      | None, _ -> Error "missing delta"
      | _, None -> Error "missing bounds"
      | Some delta, Some bounds -> (
          try
            Ok
              (Instance.make ~name:state.name ~delta ~bounds
                 ~arrivals:(List.rev state.arrivals) ())
          with Invalid_argument message -> Error message))

(* Atomic: write a temp file in the same directory, then rename, so an
   interrupted run can never leave a truncated trace at [path]. *)
let save instance ~path =
  let temp_dir = Filename.dirname path in
  let temp_path, channel =
    Filename.open_temp_file ~temp_dir (Filename.basename path ^ ".") ".tmp"
  in
  match
    Fun.protect
      ~finally:(fun () -> close_out channel)
      (fun () -> output_string channel (to_string instance))
  with
  | () -> Sys.rename temp_path path
  | exception e ->
      (try Sys.remove temp_path with Sys_error _ -> ());
      raise e

let load ~path =
  match
    let channel = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in channel)
      (fun () -> really_input_string channel (in_channel_length channel))
  with
  | text -> of_string text
  | exception Sys_error message -> Error message
