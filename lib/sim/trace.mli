(** Textual trace format for instances, for the CLI and reproducibility.

    Format (line-oriented, '#' comments allowed):
    {v
    rrs-trace v1
    name <string>
    delta <int>
    bounds <int> <int> ...          # one bound per color, color = position
    arrival <round> <color>:<count> ...
    ...
    end
    v} *)

(** Render an instance to its textual form. *)
val to_string : Instance.t -> string

(** Parse a trace. Rejects duplicate [delta]/[bounds] directives and any
    directive after [end] (signs of a corrupt or concatenated file). *)
val of_string : string -> (Instance.t, string) result

(** Atomic write: the trace is written to a temp file in [path]'s
    directory and renamed into place, so interruption cannot leave a
    truncated file at [path]. *)
val save : Instance.t -> path:string -> unit
val load : path:string -> (Instance.t, string) result
