module Clock = Rrs_obs.Clock

let schema_version = "rrs-bench/3"

type run = {
  policy : string;
  workload : string;
  n : int;
  delta : int;
  cost : int;
  reconfig_count : int;
  drop_count : int;
  exec_count : int option;
  wall_s : float option;
  minor_words : float option;
  phases : (string * float * float) list; (* (name, wall_s, minor_words) *)
  extras : (string * int) list; (* extra integer metrics, schema-free *)
}

type error = { err_key : string; err_text : string; err_attempts : int }

type experiment = {
  id : string;
  claim : string;
  mutable runs : run list; (* reverse submission order *)
  mutable errors : error list; (* reverse submission order *)
  mutable exp_wall_s : float;
  mutable exp_minor_words : float;
  mutable domain_load : (int * int * float) list; (* (domain, tasks, busy_s) *)
}

type t = {
  tag : string;
  mutable experiments : experiment list; (* reverse order *)
  mutable current : experiment option;
  mutable started_at : float;
  mutable minor0 : float;
}

let tag_of_path path =
  let base = Filename.remove_extension (Filename.basename path) in
  let prefix = "BENCH_" in
  if String.length base > String.length prefix
     && String.sub base 0 (String.length prefix) = prefix
  then String.sub base (String.length prefix) (String.length base - String.length prefix)
  else base

let create ~tag =
  {
    tag;
    experiments = [];
    current = None;
    started_at = Clock.now_s ();
    minor0 = Gc.minor_words ();
  }

let close_current t =
  match t.current with
  | None -> ()
  | Some experiment ->
      experiment.exp_wall_s <- Clock.elapsed_s t.started_at;
      experiment.exp_minor_words <- Gc.minor_words () -. t.minor0;
      t.experiments <- experiment :: t.experiments;
      t.current <- None

let start_experiment t ~id ~claim =
  close_current t;
  t.current <-
    Some
      {
        id;
        claim;
        runs = [];
        errors = [];
        exp_wall_s = 0.0;
        exp_minor_words = 0.0;
        domain_load = [];
      };
  t.started_at <- Clock.now_s ();
  t.minor0 <- Gc.minor_words ()

let current_experiment t =
  (match t.current with
  | None -> start_experiment t ~id:"adhoc" ~claim:""
  | Some _ -> ());
  match t.current with None -> assert false | Some experiment -> experiment

let record t ~policy ~workload ~n ~delta ~cost ~reconfig_count ~drop_count
    ?exec_count ?wall_s ?minor_words ?(phases = []) ?(extras = []) () =
  let experiment = current_experiment t in
  experiment.runs <-
    { policy; workload; n; delta; cost; reconfig_count; drop_count;
      exec_count; wall_s; minor_words; phases; extras }
    :: experiment.runs

let record_outcome t ~workload ~policy (outcome : Rrs_sim.Sweep.outcome) =
  record t ~policy ~workload ~n:outcome.n ~delta:outcome.delta
    ~cost:outcome.cost ~reconfig_count:outcome.reconfig_count
    ~drop_count:outcome.drop_count ~exec_count:outcome.exec_count
    ~wall_s:outcome.wall_s ()

let record_error t ~key ~error ~attempts =
  let experiment = current_experiment t in
  experiment.errors <-
    { err_key = key; err_text = error; err_attempts = attempts }
    :: experiment.errors

let record_failure t (failure : Rrs_sim.Sweep.failure) =
  record_error t ~key:failure.key ~error:failure.exn_text
    ~attempts:failure.attempts

let set_domain_load t loads =
  let experiment = current_experiment t in
  experiment.domain_load <-
    List.map
      (fun (l : Rrs_sim.Sweep.domain_load) -> (l.domain, l.tasks, l.busy_s))
      loads

(* ---- JSON rendering (hand-rolled: the container has no JSON library,
   and the schema is flat enough that escaping + printf suffice) ---- *)

let escape_into buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let float_field value =
  if Float.is_finite value then Printf.sprintf "%.6f" value else "0.0"

let render_run buffer run =
  Buffer.add_string buffer "      {\"policy\": ";
  escape_into buffer run.policy;
  Buffer.add_string buffer ", \"workload\": ";
  escape_into buffer run.workload;
  Buffer.add_string buffer
    (Printf.sprintf
       ", \"n\": %d, \"delta\": %d, \"cost\": %d, \"reconfig_count\": %d, \
        \"reconfig_cost\": %d, \"drop_count\": %d"
       run.n run.delta run.cost run.reconfig_count
       (run.delta * run.reconfig_count)
       run.drop_count);
  (match run.exec_count with
  | Some execs -> Buffer.add_string buffer (Printf.sprintf ", \"exec_count\": %d" execs)
  | None -> ());
  (match run.wall_s with
  | Some wall -> Buffer.add_string buffer (", \"wall_s\": " ^ float_field wall)
  | None -> ());
  (match run.minor_words with
  | Some words ->
      Buffer.add_string buffer (", \"minor_words\": " ^ float_field words)
  | None -> ());
  (match run.phases with
  | [] -> ()
  | phases ->
      Buffer.add_string buffer ", \"phases\": {";
      List.iteri
        (fun i (name, wall_s, minor_words) ->
          if i > 0 then Buffer.add_string buffer ", ";
          escape_into buffer name;
          Buffer.add_string buffer
            (Printf.sprintf ": {\"wall_s\": %s, \"minor_words\": %s}"
               (float_field wall_s) (float_field minor_words)))
        phases;
      Buffer.add_char buffer '}');
  (match run.extras with
  | [] -> ()
  | extras ->
      Buffer.add_string buffer ", \"extras\": {";
      List.iteri
        (fun i (name, value) ->
          if i > 0 then Buffer.add_string buffer ", ";
          escape_into buffer name;
          Buffer.add_string buffer (Printf.sprintf ": %d" value))
        extras;
      Buffer.add_char buffer '}');
  Buffer.add_char buffer '}'

let render_experiment buffer experiment =
  Buffer.add_string buffer "    {\"id\": ";
  escape_into buffer experiment.id;
  Buffer.add_string buffer ", \"claim\": ";
  escape_into buffer experiment.claim;
  Buffer.add_string buffer
    (Printf.sprintf ", \"wall_s\": %s, \"minor_words\": %s,\n"
       (float_field experiment.exp_wall_s)
       (float_field experiment.exp_minor_words));
  (match experiment.domain_load with
  | [] -> ()
  | loads ->
      Buffer.add_string buffer "     \"domain_load\": [";
      List.iteri
        (fun i (domain, tasks, busy_s) ->
          if i > 0 then Buffer.add_string buffer ", ";
          Buffer.add_string buffer
            (Printf.sprintf "{\"domain\": %d, \"tasks\": %d, \"busy_s\": %s}"
               domain tasks (float_field busy_s)))
        loads;
      Buffer.add_string buffer "],\n");
  (match List.rev experiment.errors with
  | [] -> ()
  | errors ->
      Buffer.add_string buffer "     \"errors\": [";
      List.iteri
        (fun i { err_key; err_text; err_attempts } ->
          if i > 0 then Buffer.add_string buffer ", ";
          Buffer.add_string buffer "{\"key\": ";
          escape_into buffer err_key;
          Buffer.add_string buffer ", \"error\": ";
          escape_into buffer err_text;
          Buffer.add_string buffer
            (Printf.sprintf ", \"attempts\": %d}" err_attempts))
        errors;
      Buffer.add_string buffer "],\n");
  Buffer.add_string buffer "     \"runs\": [";
  let runs = List.rev experiment.runs in
  List.iteri
    (fun i run ->
      Buffer.add_string buffer (if i = 0 then "\n" else ",\n");
      render_run buffer run)
    runs;
  if runs <> [] then Buffer.add_string buffer "\n    ";
  Buffer.add_string buffer "]}"

let to_string t =
  close_current t;
  let experiments = List.rev t.experiments in
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "{\n  \"schema\": ";
  escape_into buffer schema_version;
  Buffer.add_string buffer ",\n  \"tag\": ";
  escape_into buffer t.tag;
  Buffer.add_string buffer ",\n  \"experiments\": [";
  List.iteri
    (fun i experiment ->
      Buffer.add_string buffer (if i = 0 then "\n" else ",\n");
      render_experiment buffer experiment)
    experiments;
  if experiments <> [] then Buffer.add_string buffer "\n  ";
  Buffer.add_string buffer "],\n";
  let total_runs =
    List.fold_left (fun acc e -> acc + List.length e.runs) 0 experiments
  in
  let total_wall =
    List.fold_left (fun acc e -> acc +. e.exp_wall_s) 0.0 experiments
  in
  Buffer.add_string buffer
    (Printf.sprintf
       "  \"totals\": {\"experiments\": %d, \"runs\": %d, \"wall_s\": %s}\n}\n"
       (List.length experiments) total_runs (float_field total_wall));
  Buffer.contents buffer

(* Atomic, like Trace.save: a reader (CI polling for the BENCH file, a
   crashed bench rerun) never observes a half-written document. *)
let write t ~path =
  let text = to_string t in
  let dir = Filename.dirname path in
  let tmp, out = Filename.open_temp_file ~temp_dir:dir "bench" ".tmp" in
  (match output_string out text with
  | () -> close_out out
  | exception e ->
      close_out_noerr out;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path
