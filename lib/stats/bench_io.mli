(** Machine-readable benchmark output: serialize experiment results to a
    versioned [BENCH_<tag>.json] file.

    The schema (version {!schema_version}) is the contract between the
    bench harness and trajectory-comparison tooling (CI, plotting):

    {v
    { "schema": "rrs-bench/1",
      "tag": "<tag>",
      "experiments": [
        { "id": "E1", "claim": "...",
          "wall_s": 0.01, "minor_words": 12345.0,
          "runs": [
            { "policy": "dlru-edf", "workload": "uniform-0.9", "n": 16,
              "delta": 4, "cost": 123, "reconfig_count": 10,
              "reconfig_cost": 40, "drop_count": 83,
              "exec_count": 456,          // optional, -1 when unknown
              "wall_s": 0.002,            // optional, 0 when not measured
              "minor_words": 6789.0 } ] } ],
      "totals": { "experiments": 16, "runs": 120, "wall_s": 1.23 } }
    v}

    [cost], [reconfig_count], [reconfig_cost] (= delta * reconfig_count)
    and [drop_count] are deterministic for fixed seeds; [wall_s] and
    [minor_words] are environment-dependent. Comparisons across commits
    must key on (experiment id, run index) and the deterministic fields
    only. *)

type t

val schema_version : string

(** Derive a tag from an output path: ["results/BENCH_pr1.json"] ->
    ["pr1"]; falls back to the basename without extension. *)
val tag_of_path : string -> string

val create : tag:string -> t

(** Open a new experiment group; closes (and timestamps) the previous
    one. Runs recorded before any [start_experiment] go to an implicit
    ["adhoc"] group. *)
val start_experiment : t -> id:string -> claim:string -> unit

(** Record one run into the current experiment. [exec_count] defaults to
    unknown; [wall_s]/[minor_words] to unmeasured. *)
val record :
  t ->
  policy:string ->
  workload:string ->
  n:int ->
  delta:int ->
  cost:int ->
  reconfig_count:int ->
  drop_count:int ->
  ?exec_count:int ->
  ?wall_s:float ->
  ?minor_words:float ->
  unit ->
  unit

(** Record a sweep outcome (workload taken from the task key). *)
val record_outcome : t -> workload:string -> policy:string ->
  Rrs_sim.Sweep.outcome -> unit

(** Close the current experiment and render the whole document. *)
val to_string : t -> string

(** [write t ~path] finalizes and writes the JSON document to [path]. *)
val write : t -> path:string -> unit
