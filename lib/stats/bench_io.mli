(** Machine-readable benchmark output: serialize experiment results to a
    versioned [BENCH_<tag>.json] file.

    The schema (version {!schema_version}) is the contract between the
    bench harness and trajectory-comparison tooling (CI, plotting):

    {v
    { "schema": "rrs-bench/3",
      "tag": "<tag>",
      "experiments": [
        { "id": "E1", "claim": "...",
          "wall_s": 0.01, "minor_words": 12345.0,
          "domain_load": [                        // optional (sweeps)
            { "domain": 0, "tasks": 16, "busy_s": 0.5 } ],
          "errors": [                             // optional (failed tasks)
            { "key": "crashy/uniform-0.9/seed=0/n=8",
              "error": "Failure(\"boom\")", "attempts": 1 } ],
          "runs": [
            { "policy": "dlru-edf", "workload": "uniform-0.9", "n": 16,
              "delta": 4, "cost": 123, "reconfig_count": 10,
              "reconfig_cost": 40, "drop_count": 83,
              "exec_count": 456,          // optional
              "wall_s": 0.002,            // optional
              "minor_words": 6789.0,      // optional
              "phases": {                 // optional (profiled runs)
                "drop":    {"wall_s": 0.0001, "minor_words": 10.0},
                "arrival": {"wall_s": 0.0001, "minor_words": 10.0},
                "reconfig":{"wall_s": 0.0001, "minor_words": 10.0},
                "execute": {"wall_s": 0.0001, "minor_words": 10.0} },
              "extras": {                 // optional integer metrics
                "sessions": 8, "rounds_per_s": 120000, "p99_us": 85 } } ] } ],
      "totals": { "experiments": 16, "runs": 120, "wall_s": 1.23 } }
    v}

    rrs-bench/2 extends rrs-bench/1 with the optional per-run ["phases"]
    object (per-phase monotonic wall clock + GC minor-words from
    [Engine.run ~profile:true]) and the optional per-experiment
    ["domain_load"] array (per-domain utilization from
    [Sweep.run_profiled]); all rrs-bench/1 fields are unchanged.
    rrs-bench/3 adds the optional per-experiment ["errors"] array — one
    entry per task that failed terminally (after retries), keyed so a
    partially-failed sweep still reports which runs died and why; all
    rrs-bench/2 fields are unchanged.

    [cost], [reconfig_count], [reconfig_cost] (= delta * reconfig_count)
    and [drop_count] are deterministic for fixed seeds; [wall_s],
    [minor_words], [phases] and [domain_load] are environment-dependent.
    Comparisons across commits must key on (experiment id, run index) and
    the deterministic fields only. All wall clocks are monotonic
    ({!Rrs_obs.Clock}). *)

type t

val schema_version : string

(** Derive a tag from an output path: ["results/BENCH_pr1.json"] ->
    ["pr1"]; falls back to the basename without extension. *)
val tag_of_path : string -> string

val create : tag:string -> t

(** Open a new experiment group; closes (and timestamps) the previous
    one. Runs recorded before any [start_experiment] go to an implicit
    ["adhoc"] group. *)
val start_experiment : t -> id:string -> claim:string -> unit

(** Record one run into the current experiment. [exec_count] defaults to
    unknown; [wall_s]/[minor_words] to unmeasured; [phases] (from
    [Rrs_obs.Profile.fields]) to absent. [extras] is an optional flat
    object of additional integer metrics (e.g. E18's [sessions],
    [rounds_per_s], [p50_us], [p99_us]); absent entries render nothing,
    so the addition is backward-compatible within rrs-bench/3. *)
val record :
  t ->
  policy:string ->
  workload:string ->
  n:int ->
  delta:int ->
  cost:int ->
  reconfig_count:int ->
  drop_count:int ->
  ?exec_count:int ->
  ?wall_s:float ->
  ?minor_words:float ->
  ?phases:(string * float * float) list ->
  ?extras:(string * int) list ->
  unit ->
  unit

(** Record a sweep outcome (workload taken from the task key). *)
val record_outcome : t -> workload:string -> policy:string ->
  Rrs_sim.Sweep.outcome -> unit

(** Record a failed task into the current experiment's ["errors"] array.
    [attempts] counts every try, retries included. *)
val record_error : t -> key:string -> error:string -> attempts:int -> unit

(** [record_failure t f] is {!record_error} for a {!Rrs_sim.Sweep.failure}
    (the backtrace stays out of the JSON — it is for logs). *)
val record_failure : t -> Rrs_sim.Sweep.failure -> unit

(** Attach per-domain load accounting (from [Sweep.run_profiled]) to the
    current experiment. *)
val set_domain_load : t -> Rrs_sim.Sweep.domain_load list -> unit

(** Close the current experiment and render the whole document. *)
val to_string : t -> string

(** [write t ~path] finalizes and writes the JSON document to [path]
    atomically (temp file + rename, like [Trace.save]): a concurrent
    reader never observes a half-written document. *)
val write : t -> path:string -> unit
