module Ledger = Rrs_sim.Ledger
module Schedule = Rrs_sim.Schedule
module Instance = Rrs_sim.Instance

type per_color = {
  color : Rrs_sim.Types.color;
  bound : int;
  offered : int;
  executed : int;
  dropped : int;
  loss_rate : float;
  mean_latency : float;
  max_latency : int;
}

type t = {
  by_color : per_color list;
  executed : int;
  dropped : int;
  mean_latency : float;
  p99_latency : int;
}

let of_schedule (schedule : Schedule.t) =
  let instance = schedule.Schedule.instance in
  let bounds = instance.Instance.bounds in
  let num_colors = Instance.num_colors instance in
  let executed = Array.make num_colors 0 in
  let dropped = Array.make num_colors 0 in
  let latency_sum = Array.make num_colors 0 in
  let latency_max = Array.make num_colors 0 in
  let latencies = ref [] in
  List.iter
    (function
      | Ledger.Execute { round; color; deadline; _ } ->
          let arrival = deadline - bounds.(color) in
          let latency = round - arrival in
          executed.(color) <- executed.(color) + 1;
          latency_sum.(color) <- latency_sum.(color) + latency;
          if latency > latency_max.(color) then latency_max.(color) <- latency;
          latencies := latency :: !latencies
      | Ledger.Drop { color; count; _ } -> dropped.(color) <- dropped.(color) + count
      | Ledger.Reconfig _ | Ledger.Crash _ | Ledger.Repair _
      | Ledger.Reconfig_failed _ ->
          ())
    schedule.Schedule.events;
  let by_color =
    List.filter_map
      (fun color ->
        let offered = executed.(color) + dropped.(color) in
        if offered = 0 then None
        else
          Some
            {
              color;
              bound = bounds.(color);
              offered;
              executed = executed.(color);
              dropped = dropped.(color);
              loss_rate = float_of_int dropped.(color) /. float_of_int offered;
              mean_latency =
                (if executed.(color) = 0 then 0.0
                 else
                   float_of_int latency_sum.(color)
                   /. float_of_int executed.(color));
              max_latency = latency_max.(color);
            })
      (List.init num_colors Fun.id)
  in
  let total_executed = Array.fold_left ( + ) 0 executed in
  let total_dropped = Array.fold_left ( + ) 0 dropped in
  let sorted = List.sort Int.compare !latencies in
  let p99 =
    match total_executed with
    | 0 -> 0
    | n ->
        let rank = max 1 (int_of_float (ceil (0.99 *. float_of_int n))) in
        List.nth sorted (min (n - 1) (rank - 1))
  in
  {
    by_color;
    executed = total_executed;
    dropped = total_dropped;
    mean_latency =
      (if total_executed = 0 then 0.0
       else
         float_of_int (Array.fold_left ( + ) 0 latency_sum)
         /. float_of_int total_executed);
    p99_latency = p99;
  }

let to_table t =
  let table =
    Table.create ~title:"per-color QoS"
      ~columns:
        [ "color"; "bound"; "offered"; "executed"; "dropped"; "loss";
          "mean latency"; "max latency" ]
  in
  List.iter
    (fun row ->
      Table.add_row table
        [
          Printf.sprintf "c%d" row.color;
          Table.cell_int row.bound;
          Table.cell_int row.offered;
          Table.cell_int row.executed;
          Table.cell_int row.dropped;
          Printf.sprintf "%.1f%%" (100.0 *. row.loss_rate);
          Table.cell_float ~decimals:2 row.mean_latency;
          Table.cell_int row.max_latency;
        ])
    t.by_color;
  Table.add_row table
    [
      "total";
      "-";
      Table.cell_int (t.executed + t.dropped);
      Table.cell_int t.executed;
      Table.cell_int t.dropped;
      Printf.sprintf "%.1f%%"
        (100.0 *. float_of_int t.dropped
        /. float_of_int (max 1 (t.executed + t.dropped)));
      Table.cell_float ~decimals:2 t.mean_latency;
      Table.cell_int t.p99_latency;
    ];
  table
