module OS = Rrs_offline.Offline_schedule

let color_letter color =
  if color < 0 then '?'
  else if color < 26 then Char.chr (Char.code 'a' + color)
  else if color < 52 then Char.chr (Char.code 'A' + color - 26)
  else '*'

let render_grid ~max_width ~from_round ~to_round (grid : OS.t) =
  let horizon = grid.OS.instance.Rrs_sim.Instance.horizon in
  let from_round = max 0 from_round in
  let to_round = min horizon to_round in
  let window = max 1 (to_round - from_round) in
  let stride = max 1 ((window + max_width - 1) / max_width) in
  let columns = (window + stride - 1) / stride in
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer
    (Printf.sprintf "rounds %d..%d%s (letter = executing, '-' = configured idle, '.' = black)\n"
       from_round (to_round - 1)
       (if stride > 1 then Printf.sprintf ", sampled every %d rounds" stride else ""));
  (* Tick header: mark every 10th column with a '|'. *)
  let header = Bytes.make columns ' ' in
  let rec ticks i =
    if i < columns then begin
      Bytes.set header i '|';
      ticks (i + 10)
    end
  in
  ticks 0;
  Buffer.add_string buffer (Printf.sprintf "%6s %s\n" "" (Bytes.to_string header));
  for resource = 0 to grid.OS.m - 1 do
    Buffer.add_string buffer (Printf.sprintf "r%-4d " resource);
    for column = 0 to columns - 1 do
      let round = from_round + (column * stride) in
      let slot = round * grid.OS.speed in
      let cell =
        if slot >= Array.length grid.OS.colors.(resource) then '.'
        else
          match grid.OS.colors.(resource).(slot) with
          | None -> '.'
          | Some color ->
              (* Within a sampled stride, show execution if any mini-slot
                 of the sampled round executes. *)
              let executes = ref false in
              for mini = 0 to grid.OS.speed - 1 do
                if grid.OS.execs.(resource).(slot + mini) then executes := true
              done;
              if !executes then color_letter color else '-'
      in
      Buffer.add_char buffer cell
    done;
    Buffer.add_char buffer '\n'
  done;
  Buffer.contents buffer

let grid_timeline ?(max_width = 120) ?(from_round = 0) ?to_round grid =
  let to_round =
    match to_round with
    | Some r -> r
    | None -> grid.OS.instance.Rrs_sim.Instance.horizon
  in
  render_grid ~max_width ~from_round ~to_round grid

let percentile_table ?(title = "distribution percentiles") snapshots =
  let table =
    Table.create ~title
      ~columns:[ "metric"; "count"; "mean"; "p50"; "p90"; "p99"; "max" ]
  in
  List.iter
    (fun (snap : Rrs_obs.Probe.hist_snapshot) ->
      Table.add_row table
        [
          snap.hist_name;
          Table.cell_int snap.count;
          Table.cell_float ~decimals:2 (Rrs_obs.Probe.mean snap);
          Table.cell_int (Rrs_obs.Probe.percentile snap 0.50);
          Table.cell_int (Rrs_obs.Probe.percentile snap 0.90);
          Table.cell_int (Rrs_obs.Probe.percentile snap 0.99);
          Table.cell_int snap.max_value;
        ])
    snapshots;
  table

let phase_table ?(title = "phase profile") profile =
  let table =
    Table.create ~title ~columns:[ "phase"; "wall (s)"; "minor words"; "share" ]
  in
  let total = Rrs_obs.Profile.total_wall_s profile in
  List.iter
    (fun (name, wall_s, minor_words) ->
      Table.add_row table
        [
          name;
          Printf.sprintf "%.6f" wall_s;
          Table.cell_float ~decimals:0 minor_words;
          Printf.sprintf "%.1f%%" (100.0 *. wall_s /. Float.max total 1e-12);
        ])
    (Rrs_obs.Profile.fields profile);
  table

let timeline ?(max_width = 120) ?(from_round = 0) ?to_round schedule =
  let grid = OS.of_schedule schedule in
  let to_round =
    match to_round with
    | Some r -> r
    | None -> schedule.Rrs_sim.Schedule.instance.Rrs_sim.Instance.horizon
  in
  render_grid ~max_width ~from_round ~to_round grid
