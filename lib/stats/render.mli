(** ASCII timeline rendering of schedules: one row per resource, one
    column per (possibly sampled) round, showing the configured color and
    executions. Useful in examples and when debugging policies.

    Cells: ['.'] = black/idle location, a letter = configured color
    (['a'] = color 0, ['b'] = 1, ..., wrapping with ['A'..'Z'] then
    ['*']); uppercase-like emphasis is not used — instead an executing
    cell is rendered with the color letter and a non-executing configured
    cell with ['-'] under the same column header when [show_idle] is
    off. *)

(** [timeline ?max_width ?from_round ?to_round schedule] renders the
    event log as a grid. When the window is wider than [max_width]
    (default 120) columns, rounds are sampled uniformly and the header
    notes the stride. *)
val timeline :
  ?max_width:int ->
  ?from_round:int ->
  ?to_round:int ->
  Rrs_sim.Schedule.t ->
  string

(** One row per histogram snapshot: count, mean, p50/p90/p99 (bucket
    upper bounds), max. Used by [rrs report] and anything else rendering
    probe distributions. *)
val percentile_table :
  ?title:string -> Rrs_obs.Probe.hist_snapshot list -> Table.t

(** One row per engine phase: wall seconds, minor words, share of total
    profiled time. *)
val phase_table : ?title:string -> Rrs_obs.Profile.t -> Table.t

(** Same for an offline grid. *)
val grid_timeline :
  ?max_width:int ->
  ?from_round:int ->
  ?to_round:int ->
  Rrs_offline.Offline_schedule.t ->
  string
