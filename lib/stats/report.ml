module Event_sink = Rrs_sim.Event_sink
module Ledger = Rrs_sim.Ledger
module Probe = Rrs_obs.Probe

type t = {
  header : Event_sink.header;
  reconfig_count : int; (* includes failed reconfigurations: they paid *)
  failed_reconfig_count : int;
  crash_count : int;
  repair_count : int;
  drop_count : int;
  exec_count : int;
  rounds_seen : int;
  events_seen : int;
  exec_slack : Probe.hist_snapshot;
  drop_latency : Probe.hist_snapshot;
  round_reconfigs : Probe.hist_snapshot;
  queue_depth : Probe.hist_snapshot;
  summary : Event_sink.summary;
}

let of_channel channel =
  let registry = Probe.create_registry () in
  let exec_slack = Probe.histogram registry "exec_slack" in
  let drop_latency = Probe.histogram registry "drop_latency" in
  let round_reconfigs = Probe.histogram registry "round_reconfigs" in
  let queue_depth = Probe.histogram registry "queue_depth" in
  let header = ref None in
  let summary = ref None in
  let reconfigs = ref 0 and drops = ref 0 and execs = ref 0 in
  let failed = ref 0 and crashes = ref 0 and repairs = ref 0 in
  let rounds = ref 0 and events = ref 0 in
  let restored = ref false in
  let error = ref None in
  let lineno = ref 0 in
  let fail message =
    if !error = None then
      error := Some (Printf.sprintf "line %d: %s" !lineno message)
  in
  (try
     while !error = None do
       let line = input_line channel in
       incr lineno;
       if String.trim line <> "" then
         if !summary <> None then fail "content after summary line"
         else
           match Event_sink.parse_line line with
           | Error message -> fail message
           | Ok parsed -> (
               match (parsed, !header) with
               | Event_sink.Header h, None -> header := Some h
               | Event_sink.Header _, Some _ -> fail "duplicate header"
               | _, None -> fail "first line must be the schema header"
               | Event_sink.Event event, Some h ->
                   incr events;
                   (match event with
                   | Event_sink.Reconfig _ -> incr reconfigs
                   | Event_sink.Drop { color; count; _ } ->
                       drops := !drops + count;
                       if color < 0 || color >= Array.length h.hdr_bounds then
                         fail (Printf.sprintf "drop of unknown color %d" color)
                       else
                         Probe.observe_n drop_latency h.hdr_bounds.(color)
                           ~n:count
                   | Event_sink.Execute { round; deadline; _ } ->
                       incr execs;
                       Probe.observe exec_slack (deadline - round)
                   | Event_sink.Reconfig_failed _ ->
                       (* Paid Delta without taking effect: counts toward
                          reconfigs so cost stays delta*reconfigs+drops. *)
                       incr reconfigs;
                       incr failed
                   | Event_sink.Crash _ -> incr crashes
                   | Event_sink.Repair _ -> incr repairs)
               | Event_sink.Round snap, Some _ ->
                   incr rounds;
                   Probe.observe round_reconfigs snap.snap_reconfigs;
                   Probe.observe queue_depth snap.snap_pending
               | Event_sink.Restored r, Some _ ->
                   (* A checkpoint-seeded trace: the stream carries only
                      events from res_round on, so seed the folded totals
                      with what accumulated before it. Legal once, before
                      any event. *)
                   if !restored then fail "duplicate restored line"
                   else if !events > 0 || !rounds > 0 then
                     fail "restored line after events"
                   else begin
                     restored := true;
                     reconfigs := r.res_reconfigs;
                     failed := r.res_failed;
                     drops := r.res_drops;
                     execs := r.res_execs
                   end
               | Event_sink.Aborted { ab_round; ab_reason }, Some _ ->
                   fail
                     (Printf.sprintf "run aborted at round %d: %s" ab_round
                        ab_reason)
               | Event_sink.Summary s, Some _ -> summary := Some s)
     done
   with End_of_file -> ());
  match (!error, !header, !summary) with
  | Some message, _, _ -> Error message
  | None, None, _ -> Error "empty file (no schema header)"
  | None, Some _, None ->
      Error "missing summary line (truncated or interrupted run?)"
  | None, Some header, Some sum ->
      if
        sum.sum_reconfig_count <> !reconfigs
        || sum.sum_drop_count <> !drops
        || sum.sum_exec_count <> !execs
      then
        Error
          (Printf.sprintf
             "summary (reconfigs=%d drops=%d execs=%d) does not match folded \
              events (reconfigs=%d drops=%d execs=%d): truncated file?"
             sum.sum_reconfig_count sum.sum_drop_count sum.sum_exec_count
             !reconfigs !drops !execs)
      else if sum.sum_failed_reconfig_count <> !failed then
        Error
          (Printf.sprintf
             "summary failed_reconfig_count=%d does not match folded events \
              (%d)"
             sum.sum_failed_reconfig_count !failed)
      else if sum.sum_cost <> (header.hdr_delta * !reconfigs) + !drops then
        Error
          (Printf.sprintf "summary cost %d does not equal delta*reconfigs+drops=%d"
             sum.sum_cost
             ((header.hdr_delta * !reconfigs) + !drops))
      else
        Ok
          {
            header;
            reconfig_count = !reconfigs;
            failed_reconfig_count = !failed;
            crash_count = !crashes;
            repair_count = !repairs;
            drop_count = !drops;
            exec_count = !execs;
            rounds_seen = !rounds;
            events_seen = !events;
            exec_slack = Probe.snapshot_histogram exec_slack;
            drop_latency = Probe.snapshot_histogram drop_latency;
            round_reconfigs = Probe.snapshot_histogram round_reconfigs;
            queue_depth = Probe.snapshot_histogram queue_depth;
            summary = sum;
          }

let of_path path =
  match open_in path with
  | exception Sys_error message -> Error message
  | channel ->
      Fun.protect
        ~finally:(fun () -> close_in channel)
        (fun () -> of_channel channel)

let total_cost t = (t.header.hdr_delta * t.reconfig_count) + t.drop_count

let summary_string t =
  Format.asprintf "%a" (fun ppf () ->
      Ledger.pp_summary_counts ~failed:t.failed_reconfig_count ppf
        ~delta:t.header.hdr_delta ~reconfigs:t.reconfig_count
        ~drops:t.drop_count ~execs:t.exec_count)
    ()

let tables t =
  [
    Render.percentile_table ~title:"job trajectory (per event)"
      [ t.exec_slack; t.drop_latency ];
    Render.percentile_table ~title:"round trajectory (per round)"
      [ t.round_reconfigs; t.queue_depth ];
  ]
