(** Reconstruct a run from its streamed JSONL — any schema in
    [Event_sink.supported_schemas] ([rrs-events/1] and [rrs-events/2]).

    Folds the event lines back into the exact ledger counters of the live
    run — {!summary_string} is byte-identical to what
    [Ledger.pp_summary] printed during the run, because both go through
    [Ledger.pp_summary_counts] — plus the trajectory distributions
    (execution slack, drop latency, per-round reconfig churn, queue
    depth) the streaming sink preserves and end-of-run totals lose.

    Memory is bounded: events fold into fixed-bucket histograms
    ({!Rrs_obs.Probe}), never a retained list. The closing summary line
    is required and cross-checked against the folded totals, so a
    truncated file is always detected; an explicit [aborted] record
    (written by the engine when a policy raises mid-run) is reported as
    its own error naming the round and reason. *)

type t = {
  header : Rrs_sim.Event_sink.header;
  reconfig_count : int; (* paid reconfigurations, failed ones included *)
  failed_reconfig_count : int; (* 0 for every rrs-events/1 file *)
  crash_count : int;
  repair_count : int;
  drop_count : int;
  exec_count : int;
  rounds_seen : int; (* round-snapshot lines *)
  events_seen : int; (* reconfig + drop + execute + fault lines *)
  exec_slack : Rrs_obs.Probe.hist_snapshot; (* deadline - round at execute *)
  drop_latency : Rrs_obs.Probe.hist_snapshot; (* delay bound of dropped jobs *)
  round_reconfigs : Rrs_obs.Probe.hist_snapshot; (* churn per round *)
  queue_depth : Rrs_obs.Probe.hist_snapshot; (* pending jobs per round *)
  summary : Rrs_sim.Event_sink.summary; (* the file's closing line *)
}

val of_channel : in_channel -> (t, string) result

val of_path : string -> (t, string) result

(** [delta * reconfig_count + drop_count]. *)
val total_cost : t -> int

(** The live run's [Ledger.pp_summary] line, reconstructed. *)
val summary_string : t -> string

(** Percentile tables for the four trajectory distributions. *)
val tables : t -> Table.t list
