module Types = Rrs_sim.Types
module Job_pool = Rrs_sim.Job_pool

let policy ~drop_costs : (module Rrs_sim.Policy.POLICY) =
  (module struct
    type t = {
      n : int;
      delta : int;
      demand : int array; (* weighted backlog accumulated while uncached *)
      credit : float array; (* Landlord credit of cached colors *)
      cached : (Types.color, unit) Hashtbl.t;
      target : Types.color option array; (* reusable reconfigure buffer *)
      mutable faults : int;
      mutable evictions : int;
      mutable hits : int;
    }

    let name = "landlord"

    let create ~n ~delta ~bounds =
      let num_colors = Array.length bounds in
      if Array.length drop_costs <> num_colors then
        invalid_arg "Landlord.policy: drop_costs length mismatch";
      {
        n;
        delta;
        demand = Array.make num_colors 0;
        credit = Array.make num_colors 0.0;
        cached = Hashtbl.create 16;
        target = Array.make n None;
        faults = 0;
        evictions = 0;
        hits = 0;
      }

    let on_drop _ ~round:_ ~dropped:_ = ()

    let on_arrival t ~round:_ ~request =
      List.iter
        (fun (color, count) ->
          if count > 0 then
            if Hashtbl.mem t.cached color then begin
              (* Hit: refresh the landlord credit. *)
              t.credit.(color) <- float_of_int t.delta;
              t.hits <- t.hits + 1
            end
            else
              t.demand.(color) <-
                min (t.demand.(color) + (drop_costs.(color) * count))
                  (4 * t.delta))
        request

    let evict_for_room t =
      (* The Landlord step: charge everyone the minimum credit, evict the
         zeroed tenants (lowest credit first). *)
      let min_credit =
        Hashtbl.fold (fun color () acc -> Float.min acc t.credit.(color)) t.cached
          infinity
      in
      if Float.is_finite min_credit then begin
        let victims = ref [] in
        Hashtbl.iter
          (fun color () ->
            t.credit.(color) <- t.credit.(color) -. min_credit;
            if t.credit.(color) <= 1e-9 then victims := color :: !victims)
          t.cached;
        match List.sort Int.compare !victims with
        | victim :: _ ->
            Hashtbl.remove t.cached victim;
            t.evictions <- t.evictions + 1
        | [] -> ()
      end

    let reconfigure t (view : Rrs_sim.Policy.view) =
      let capacity = t.n / 2 in
      (* Admit faulting colors: nonidle, uncached, demand >= delta.
         Process by descending demand so the hottest weighted backlog
         wins ties for room. *)
      let faulting =
        Job_pool.nonidle_colors view.pool
        |> List.filter (fun color ->
               (not (Hashtbl.mem t.cached color)) && t.demand.(color) >= t.delta)
        |> List.sort (fun a b -> Int.compare t.demand.(b) t.demand.(a))
      in
      List.iter
        (fun color ->
          if not (Hashtbl.mem t.cached color) then begin
            let guard = ref (2 * capacity) in
            while Hashtbl.length t.cached >= capacity && !guard > 0 do
              evict_for_room t;
              decr guard
            done;
            if Hashtbl.length t.cached < capacity then begin
              Hashtbl.replace t.cached color ();
              t.credit.(color) <- float_of_int t.delta;
              t.demand.(color) <- 0;
              t.faults <- t.faults + 1
            end
          end)
        faulting;
      let want = Hashtbl.fold (fun color () acc -> color :: acc) t.cached [] in
      Rrs_core.Cache_layout.place ~into:t.target ~n:t.n ~copies:2
        ~current:view.assignment ~want ()

    let stats t =
      [
        ("cached", Hashtbl.length t.cached);
        ("faults", t.faults);
        ("evictions", t.evictions);
        ("hits", t.hits);
      ]

    module Json = Rrs_sim.Event_sink.Json

    (* Credits are fractional, so they travel as a comma-joined list of
       hex floats ("%h") inside one JSON string — exact round-trip, no
       decimal rounding. *)
    let serialize t =
      let credits =
        Array.to_list t.credit
        |> List.map (Printf.sprintf "%h")
        |> String.concat ","
      in
      let cached =
        Hashtbl.fold (fun color () acc -> color :: acc) t.cached []
        |> List.sort Int.compare
      in
      Printf.sprintf
        "{\"demand\":%s,\"credit\":%s,\"cached\":%s,\"faults\":%d,\
         \"evictions\":%d,\"hits\":%d}"
        (Json.ints (Array.to_list t.demand))
        (Json.escape credits) (Json.ints cached) t.faults t.evictions t.hits

    let deserialize t blob =
      let fields = Json.parse_fields blob in
      let num_colors = Array.length t.demand in
      let demand = Json.ints_field fields "demand" in
      if Array.length demand <> num_colors then
        raise (Json.Parse_error "field \"demand\": length mismatch");
      let credits =
        match String.split_on_char ',' (Json.str_field fields "credit") with
        | [ "" ] -> [||]
        | parts ->
            Array.of_list
              (List.map
                 (fun part ->
                   match float_of_string_opt part with
                   | Some value -> value
                   | None ->
                       raise (Json.Parse_error "field \"credit\": bad float"))
                 parts)
      in
      if Array.length credits <> num_colors then
        raise (Json.Parse_error "field \"credit\": length mismatch");
      Array.blit demand 0 t.demand 0 num_colors;
      Array.blit credits 0 t.credit 0 num_colors;
      t.faults <- Json.int_field fields "faults";
      t.evictions <- Json.int_field fields "evictions";
      t.hits <- Json.int_field fields "hits";
      Hashtbl.reset t.cached;
      Array.iter
        (fun color -> Hashtbl.replace t.cached color ())
        (Json.ints_field fields "cached")
  end)
