module Types = Rrs_sim.Types
module Job_pool = Rrs_sim.Job_pool

let policy ~drop_costs : (module Rrs_sim.Policy.POLICY) =
  (module struct
    type t = {
      n : int;
      delta : int;
      demand : int array; (* weighted backlog accumulated while uncached *)
      credit : float array; (* Landlord credit of cached colors *)
      cached : (Types.color, unit) Hashtbl.t;
      target : Types.color option array; (* reusable reconfigure buffer *)
      mutable faults : int;
      mutable evictions : int;
      mutable hits : int;
    }

    let name = "landlord"

    let create ~n ~delta ~bounds =
      let num_colors = Array.length bounds in
      if Array.length drop_costs <> num_colors then
        invalid_arg "Landlord.policy: drop_costs length mismatch";
      {
        n;
        delta;
        demand = Array.make num_colors 0;
        credit = Array.make num_colors 0.0;
        cached = Hashtbl.create 16;
        target = Array.make n None;
        faults = 0;
        evictions = 0;
        hits = 0;
      }

    let on_drop _ ~round:_ ~dropped:_ = ()

    let on_arrival t ~round:_ ~request =
      List.iter
        (fun (color, count) ->
          if count > 0 then
            if Hashtbl.mem t.cached color then begin
              (* Hit: refresh the landlord credit. *)
              t.credit.(color) <- float_of_int t.delta;
              t.hits <- t.hits + 1
            end
            else
              t.demand.(color) <-
                min (t.demand.(color) + (drop_costs.(color) * count))
                  (4 * t.delta))
        request

    let evict_for_room t =
      (* The Landlord step: charge everyone the minimum credit, evict the
         zeroed tenants (lowest credit first). *)
      let min_credit =
        Hashtbl.fold (fun color () acc -> Float.min acc t.credit.(color)) t.cached
          infinity
      in
      if Float.is_finite min_credit then begin
        let victims = ref [] in
        Hashtbl.iter
          (fun color () ->
            t.credit.(color) <- t.credit.(color) -. min_credit;
            if t.credit.(color) <= 1e-9 then victims := color :: !victims)
          t.cached;
        match List.sort Int.compare !victims with
        | victim :: _ ->
            Hashtbl.remove t.cached victim;
            t.evictions <- t.evictions + 1
        | [] -> ()
      end

    let reconfigure t (view : Rrs_sim.Policy.view) =
      let capacity = t.n / 2 in
      (* Admit faulting colors: nonidle, uncached, demand >= delta.
         Process by descending demand so the hottest weighted backlog
         wins ties for room. *)
      let faulting =
        Job_pool.nonidle_colors view.pool
        |> List.filter (fun color ->
               (not (Hashtbl.mem t.cached color)) && t.demand.(color) >= t.delta)
        |> List.sort (fun a b -> Int.compare t.demand.(b) t.demand.(a))
      in
      List.iter
        (fun color ->
          if not (Hashtbl.mem t.cached color) then begin
            let guard = ref (2 * capacity) in
            while Hashtbl.length t.cached >= capacity && !guard > 0 do
              evict_for_room t;
              decr guard
            done;
            if Hashtbl.length t.cached < capacity then begin
              Hashtbl.replace t.cached color ();
              t.credit.(color) <- float_of_int t.delta;
              t.demand.(color) <- 0;
              t.faults <- t.faults + 1
            end
          end)
        faulting;
      let want = Hashtbl.fold (fun color () acc -> color :: acc) t.cached [] in
      Rrs_core.Cache_layout.place ~into:t.target ~n:t.n ~copies:2
        ~current:view.assignment ~want ()

    let stats t =
      [
        ("cached", Hashtbl.length t.cached);
        ("faults", t.faults);
        ("evictions", t.evictions);
        ("hits", t.hits);
      ]
  end)
