module Instance = Rrs_sim.Instance
module Ledger = Rrs_sim.Ledger

type t = {
  instance : Instance.t;
  drop_costs : int array;
}

let make ~instance ~drop_costs =
  let bounds = instance.Instance.bounds in
  let num_colors = Array.length bounds in
  if Array.length drop_costs <> num_colors then
    Error
      (Printf.sprintf "expected %d drop costs, got %d" num_colors
         (Array.length drop_costs))
  else if Array.exists (fun c -> c < 1) drop_costs then
    Error "drop costs must be >= 1"
  else if Array.exists (fun d -> d <> bounds.(0)) bounds then
    Error "the companion problem requires one uniform delay bound"
  else Ok { instance; drop_costs }

let bound t = t.instance.Instance.bounds.(0)

let cost_of_events t events =
  List.fold_left
    (fun acc event ->
      match event with
      | Ledger.Reconfig _ | Ledger.Reconfig_failed _ ->
          (* failed reconfigurations still pay Delta *)
          acc + t.instance.Instance.delta
      | Ledger.Drop { color; count; _ } -> acc + (t.drop_costs.(color) * count)
      | Ledger.Execute _ | Ledger.Crash _ | Ledger.Repair _ -> acc)
    0 events

let run_policy ~n ~policy t =
  let result = Rrs_sim.Engine.run ~record_events:true ~n ~policy t.instance in
  cost_of_events t (Ledger.events result.ledger)

let lower_bound t =
  let num_colors = Instance.num_colors t.instance in
  let total = ref 0 in
  for color = 0 to num_colors - 1 do
    let jobs = Instance.jobs_of_color t.instance color in
    if jobs > 0 then
      total :=
        !total + min t.instance.Instance.delta (t.drop_costs.(color) * jobs)
  done;
  !total

let opt_cost ?max_states ~m t =
  Rrs_offline.Brute_force.opt_cost ?max_states ~drop_costs:t.drop_costs ~m
    t.instance
