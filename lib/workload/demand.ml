(* Declared workload specifications (rrs-spec/1). See demand.mli. *)

module Json = Rrs_sim.Event_sink.Json

let schema_version = "rrs-spec/1"

type entry = {
  color : int;
  bound : int;
  rate_num : int;
  rate_den : int;
  burst : int;
}

type t = {
  name : string;
  delta : int;
  speed : int;
  n : int option;
  entries : entry array;
}

let sprintf = Printf.sprintf

let validate spec =
  if spec.delta < 1 then Error (sprintf "delta %d < 1" spec.delta)
  else if spec.speed < 1 then Error (sprintf "speed %d < 1" spec.speed)
  else if Array.length spec.entries = 0 then Error "no colors declared"
  else
    let problem = ref None in
    Array.iteri
      (fun i e ->
        let bad format = Printf.ksprintf (fun m -> if !problem = None then problem := Some m) format in
        if e.color <> i then bad "entry %d declares color %d (colors must be dense, in order)" i e.color;
        if e.bound < 1 then bad "color %d: bound %d < 1" i e.bound;
        if e.rate_num < 0 then bad "color %d: rate_num %d < 0" i e.rate_num;
        if e.rate_den < 1 then bad "color %d: rate_den %d < 1" i e.rate_den;
        if e.burst < 0 then bad "color %d: burst %d < 0" i e.burst)
      spec.entries;
    (match spec.n with
    | Some n when n < 1 -> if !problem = None then problem := Some (sprintf "n %d < 1" n)
    | _ -> ());
    match !problem with None -> Ok spec | Some m -> Error m

let make ?(name = "spec") ?n ~delta ~speed entries =
  validate { name; delta; speed; n; entries = Array.of_list entries }

let num_colors spec = Array.length spec.entries
let bounds spec = Array.map (fun e -> e.bound) spec.entries

let cumulative e r =
  if r < 0 then 0 else e.burst + ((r + 1) * e.rate_num / e.rate_den)

let arrivals_at e r = cumulative e r - cumulative e (r - 1)

let request_at spec r =
  Array.to_list spec.entries
  |> List.filter_map (fun e ->
         let k = arrivals_at e r in
         if k > 0 then Some (e.color, k) else None)

let ceil_div a b = (a + b - 1) / b
let rate_mjpr e = if e.rate_num = 0 then 0 else ceil_div (1000 * e.rate_num) e.rate_den

let total_rate_mjpr spec =
  Array.fold_left (fun acc e -> acc + rate_mjpr e) 0 spec.entries

let to_instance ?name ~rounds spec =
  if rounds < 1 then invalid_arg "Demand.to_instance: rounds < 1";
  let arrivals = ref [] in
  for r = rounds - 1 downto 0 do
    match request_at spec r with
    | [] -> ()
    | request -> arrivals := (r, request) :: !arrivals
  done;
  Rrs_sim.Instance.make
    ~name:(Option.value name ~default:spec.name)
    ~delta:spec.delta ~bounds:(bounds spec) ~arrivals:!arrivals ()

(* -- rrs-spec/1 rendering and parsing ---------------------------------- *)

let to_string spec =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer
    (sprintf "{\"schema\":%s,\"name\":%s,\"delta\":%d,\"speed\":%d,\"colors\":%d%s}\n"
       (Json.escape schema_version) (Json.escape spec.name) spec.delta
       spec.speed (Array.length spec.entries)
       (match spec.n with None -> "" | Some n -> sprintf ",\"n\":%d" n));
  Array.iter
    (fun e ->
      Buffer.add_string buffer
        (sprintf
           "{\"color\":%d,\"bound\":%d,\"rate_num\":%d,\"rate_den\":%d,\"burst\":%d}\n"
           e.color e.bound e.rate_num e.rate_den e.burst))
    spec.entries;
  Buffer.contents buffer

let save spec ~path =
  let out = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr out)
    (fun () -> output_string out (to_string spec))

let known_header_fields = [ "schema"; "name"; "delta"; "speed"; "colors"; "n" ]
let known_entry_fields = [ "color"; "bound"; "rate_num"; "rate_den"; "burst" ]

let check_fields ~known ~what fields =
  List.fold_left
    (fun acc (key, _) ->
      match acc with
      | Error _ -> acc
      | Ok () ->
          if List.mem key known then Ok ()
          else Error (sprintf "%s: unknown field %S" what key))
    (Ok ()) fields

let ( let* ) = Result.bind

let parse document =
  let lines =
    String.split_on_char '\n' document
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty spec document"
  | header :: rest -> (
      try
        let fields = Json.parse_fields header in
        let* () = check_fields ~known:known_header_fields ~what:"header" fields in
        let schema = Json.str_field fields "schema" in
        if schema <> schema_version then
          Error (sprintf "unsupported schema %S (want %S)" schema schema_version)
        else
          let name = Json.str_field fields "name" in
          let delta = Json.int_field fields "delta" in
          let speed = Json.int_field fields "speed" in
          let colors = Json.int_field fields "colors" in
          let n =
            match List.assoc_opt "n" fields with
            | None | Some Json.Vnull -> None
            | Some (Json.Vint n) -> Some n
            | Some _ -> raise (Json.Parse_error "header field \"n\" must be an int")
          in
          let* entries =
            List.fold_left
              (fun acc line ->
                let* entries = acc in
                let fields = Json.parse_fields line in
                let* () =
                  check_fields ~known:known_entry_fields ~what:"entry" fields
                in
                Ok
                  ({
                     color = Json.int_field fields "color";
                     bound = Json.int_field fields "bound";
                     rate_num = Json.int_field fields "rate_num";
                     rate_den = Json.int_field fields "rate_den";
                     burst = Json.int_field fields "burst";
                   }
                  :: entries))
              (Ok []) rest
          in
          let entries = List.rev entries in
          if List.length entries <> colors then
            Error
              (sprintf "header declares %d colors, document carries %d" colors
                 (List.length entries))
          else make ~name ?n ~delta ~speed entries
      with Json.Parse_error m -> Error (sprintf "malformed spec line: %s" m))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | document -> parse document
  | exception Sys_error m -> Error m
