(** Declared workload specifications — schema [rrs-spec/1].

    A spec declares, per color, a sustained token-bucket arrival rate
    ([rate_num]/[rate_den] jobs per round, rational), a burst allowance
    (extra jobs deliverable up front) and the delay bound [D_l] those
    jobs must meet, plus the model constants ([delta], [speed]). It is
    the workload side of the capacity question [Rrs_analysis] answers:
    cumulative color-[l] arrivals through round [r] are bounded by
    [burst_l + floor ((r + 1) * rate_num_l / rate_den_l)].

    File format (JSONL, one flat object per line, header first):
    {v
    {"schema":"rrs-spec/1","name":"...","delta":D,"speed":S,"colors":K}
    {"color":0,"bound":D_0,"rate_num":p,"rate_den":q,"burst":b}
    ...
    v}
    The header may carry an optional ["n"] field — a declared deployment
    size, used by [rrs analyze] as the deployment to verify and by
    [rrs serve --admission] as the configured supply. Unknown header or
    entry fields are errors: the schema is versioned, not open. *)

val schema_version : string
(** ["rrs-spec/1"]. *)

type entry = {
  color : int;
  bound : int; (* D_l >= 1 *)
  rate_num : int; (* jobs per round, numerator; >= 0 *)
  rate_den : int; (* denominator; >= 1 *)
  burst : int; (* extra jobs deliverable at round 0; >= 0 *)
}

type t = {
  name : string;
  delta : int;
  speed : int;
  n : int option; (* declared deployment size, when the spec carries one *)
  entries : entry array; (* entries.(l).color = l *)
}

(** Validates everything the parser would: [delta >= 1], [speed >= 1],
    colors dense [0..K-1] in order, every bound [>= 1], rates
    non-negative with positive denominators, bursts non-negative,
    [n >= 1] when given. *)
val make :
  ?name:string -> ?n:int -> delta:int -> speed:int -> entry list ->
  (t, string) result

val num_colors : t -> int
val bounds : t -> int array

(** Cumulative arrivals of one color through round [r] (inclusive):
    [burst + floor ((r + 1) * rate_num / rate_den)]; 0 for [r < 0]. *)
val cumulative : entry -> int -> int

(** Jobs the deterministic generator delivers at exactly round [r]:
    [cumulative r - cumulative (r - 1)]. *)
val arrivals_at : entry -> int -> int

(** The full request for round [r] (normalized, possibly empty). *)
val request_at : t -> int -> Rrs_sim.Types.request

(** Declared sustained rate in milli-jobs per round, rounded up. *)
val rate_mjpr : entry -> int

(** Sum of {!rate_mjpr} over all colors. *)
val total_rate_mjpr : t -> int

(** The spec's deterministic arrival sequence over rounds [0..rounds-1]
    as a simulator instance (the horizon extends past the last
    deadline, per {!Rrs_sim.Instance.make}). *)
val to_instance : ?name:string -> rounds:int -> t -> Rrs_sim.Instance.t

(** Parse a whole [rrs-spec/1] document. *)
val parse : string -> (t, string) result

(** {!parse} a file. *)
val load : string -> (t, string) result

val to_string : t -> string
val save : t -> path:string -> unit
