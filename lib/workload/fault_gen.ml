module Fault = Rrs_sim.Fault

(* Availability model: each location alternates online/offline phases with
   geometric durations. [crash_density] is the stationary offline
   fraction, so with mean outage length m the mean online gap is
   g = m * (1 - p) / p and expected offline location-rounds over the run
   are ~ crash_density * n * horizon. *)
let random ?name ?(mean_outage = 8) ?(reconfig_fail_rate = 0.0) ~seed ~n
    ~horizon ~crash_density () =
  if n < 1 then invalid_arg "Fault_gen.random: n must be >= 1";
  if horizon < 1 then invalid_arg "Fault_gen.random: horizon must be >= 1";
  if mean_outage < 1 then
    invalid_arg "Fault_gen.random: mean_outage must be >= 1";
  if crash_density < 0.0 || crash_density >= 1.0 then
    invalid_arg "Fault_gen.random: crash_density must be in [0, 1)";
  if reconfig_fail_rate < 0.0 || reconfig_fail_rate > 1.0 then
    invalid_arg "Fault_gen.random: reconfig_fail_rate must be in [0, 1]";
  let gen = Gen.create ~seed in
  let crashes = ref [] in
  if crash_density > 0.0 then begin
    let mean_gap =
      float_of_int mean_outage *. (1.0 -. crash_density) /. crash_density
    in
    let p_down = 1.0 /. (1.0 +. mean_gap) in
    let p_up = 1.0 /. float_of_int mean_outage in
    for location = 0 to n - 1 do
      (* Skip a stationary-distributed prefix so round 0 is not
         artificially all-online. *)
      let round = ref (Gen.geometric gen ~p:p_down ~cap:horizon) in
      while !round < horizon do
        let outage = 1 + Gen.geometric gen ~p:p_up ~cap:(horizon - !round) in
        let until_round = min horizon (!round + outage) in
        crashes :=
          { Fault.location; from_round = !round; until_round } :: !crashes;
        round := until_round + 1 + Gen.geometric gen ~p:p_down ~cap:horizon
      done
    done
  end;
  let reconfig_failures = ref [] in
  if reconfig_fail_rate > 0.0 then
    for location = 0 to n - 1 do
      for round = 0 to horizon - 1 do
        if Gen.flip gen ~p:reconfig_fail_rate then
          reconfig_failures :=
            { Fault.rf_round = round; rf_location = location }
            :: !reconfig_failures
      done
    done;
  let name =
    match name with
    | Some name -> name
    | None ->
        Printf.sprintf "random-s%d-d%.3f-r%.3f" seed crash_density
          reconfig_fail_rate
  in
  Fault.make ~name ~seed ~crashes:!crashes
    ~reconfig_failures:!reconfig_failures ()
