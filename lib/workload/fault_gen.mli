(** Seeded random fault plans for degradation experiments.

    Deterministic in [seed]: the same (seed, n, horizon, parameters)
    always yields the same {!Rrs_sim.Fault.plan}, so a degradation curve
    is reproducible from its seeds alone — no plan files need to be
    shipped with results. *)

(** [random ~seed ~n ~horizon ~crash_density ()] draws, per location,
    alternating online/offline phases with geometric durations:
    [crash_density] is the stationary offline fraction (expected offline
    location-rounds ~ [crash_density * n * horizon]) and [mean_outage]
    (default 8) the mean length of one crash window. With
    [reconfig_fail_rate > 0] (default 0) each (round, location) pair
    independently poisons its reconfigurations with that probability.
    @raise Invalid_argument on [n < 1], [horizon < 1], [mean_outage < 1],
    [crash_density] outside [0, 1) or [reconfig_fail_rate] outside
    [0, 1]. *)
val random :
  ?name:string ->
  ?mean_outage:int ->
  ?reconfig_fail_rate:float ->
  seed:int ->
  n:int ->
  horizon:int ->
  crash_density:float ->
  unit ->
  Rrs_sim.Fault.plan
