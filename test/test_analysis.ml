(* Capacity-analysis tests: dbf/sbf arithmetic, minimality of the
   binary-searched allocation, verdicts, spec parse/save round-trips,
   the sized-deployment acceptance specs (zero drops at the analytic
   minimum, drops at one resource less), and calibration fits. *)

module Demand = Rrs_workload.Demand
module Capacity = Rrs_analysis.Capacity
module Calibrate = Rrs_analysis.Calibrate

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let entry ?(burst = 0) ~bound ~num ~den color =
  { Demand.color; bound; rate_num = num; rate_den = den; burst }

let spec_exn ?name ?n ~delta ~speed entries =
  match Demand.make ?name ?n ~delta ~speed entries with
  | Ok t -> t
  | Error message -> Alcotest.failf "spec: %s" message

(* The three acceptance specs: [rrs analyze] sizes each, the sized
   deployment absorbs the declared arrivals with zero drops, and one
   resource less drops. *)
let spec_steady () =
  (* 4 colors at 1 job/round each: one dedicated resource per color. *)
  spec_exn ~name:"steady-4" ~delta:2 ~speed:1
    (List.init 4 (fun c -> entry ~bound:8 ~num:1 ~den:1 c))

let spec_mixed () =
  (* 1/2 + burst and 3/4: both colors fit on one resource each. *)
  spec_exn ~name:"mixed-rates" ~delta:3 ~speed:1
    [ entry ~bound:6 ~num:1 ~den:2 ~burst:1 0; entry ~bound:12 ~num:3 ~den:4 1 ]

let spec_bursty () =
  (* 3 colors at 3/4 with burst 2. *)
  spec_exn ~name:"bursty-3" ~delta:2 ~speed:1
    (List.init 3 (fun c -> entry ~bound:8 ~num:3 ~den:4 ~burst:2 c))

(* ---- dbf / sbf arithmetic ---- *)

let test_dbf_values () =
  let e = entry ~bound:6 ~num:3 ~den:4 ~burst:2 0 in
  check "below the bound no work is due" 0 (Capacity.dbf e 5);
  (* t = 6: one arrival round in the window -> burst + ceil(3/4) *)
  check "first window" 3 (Capacity.dbf e 6);
  check "t=9" 5 (Capacity.dbf e 9);
  check "t=13" 8 (Capacity.dbf e 13);
  let idle = entry ~bound:4 ~num:0 ~den:1 0 in
  check "idle color demands nothing" 0 (Capacity.dbf idle 100)

let test_dbf_monotone () =
  let e = entry ~bound:5 ~num:2 ~den:3 ~burst:1 0 in
  let prev = ref 0 in
  for t = 1 to 64 do
    let d = Capacity.dbf e t in
    check_bool "dbf monotone in the window" true (d >= !prev);
    prev := d
  done

let test_sbf_values () =
  check "before the delay nothing is served" 0
    (Capacity.sbf ~resources:2 ~speed:1 ~delay:2 2);
  check "one round past the delay" 2
    (Capacity.sbf ~resources:2 ~speed:1 ~delay:2 3);
  check "linear afterwards" 16 (Capacity.sbf ~resources:2 ~speed:1 ~delay:2 10);
  check "speed scales supply" 9 (Capacity.sbf ~resources:1 ~speed:3 ~delay:1 4)

(* ---- minimality and witnesses ---- *)

let test_min_resources_idle () =
  match Capacity.min_resources ~speed:1 ~delay:1 (entry ~bound:4 ~num:0 ~den:1 0) with
  | Capacity.Resources k -> check "idle color needs nothing" 0 k
  | Capacity.Impossible reason -> Alcotest.failf "idle impossible: %s" reason

let test_min_resources_impossible () =
  (* Startup delay >= bound: the supply window before the deadline is
     empty, no resource count helps. *)
  match Capacity.min_resources ~speed:1 ~delay:6 (entry ~bound:6 ~num:1 ~den:1 0) with
  | Capacity.Impossible _ -> ()
  | Capacity.Resources k -> Alcotest.failf "expected Impossible, got %d" k

let gen_entry =
  QCheck2.Gen.(
    let* bound = int_range 2 12 in
    let* num = int_range 0 4 in
    let* den = int_range 1 4 in
    let* burst = int_range 0 3 in
    return (entry ~bound ~num ~den ~burst 0))

let prop_witness_feasible_agree =
  QCheck2.Test.make ~name:"feasible <-> no witness" ~count:200
    QCheck2.Gen.(pair gen_entry (int_range 0 3))
    (fun (e, resources) ->
      let delay = min 2 (e.Demand.bound - 1) in
      let feasible = Capacity.feasible ~resources ~speed:1 ~delay e in
      let witness = Capacity.witness ~resources ~speed:1 ~delay e in
      (match witness with
      | Some v ->
          (* The witness really violates: demand over supply at t. *)
          v.Capacity.v_demand > v.Capacity.v_supply
          && v.v_demand = Capacity.dbf e v.v_window
          && v.v_supply = Capacity.sbf ~resources ~speed:1 ~delay v.v_window
      | None -> true)
      && feasible = (witness = None))

let prop_min_resources_minimal =
  QCheck2.Test.make ~name:"min_resources is minimal and feasible" ~count:200
    gen_entry (fun e ->
      let delay = min 2 (e.Demand.bound - 1) in
      match Capacity.min_resources ~speed:1 ~delay e with
      | Capacity.Impossible _ ->
          (* only when the deadline window is empty of supply *)
          delay >= e.Demand.bound
      | Capacity.Resources k ->
          Capacity.feasible ~resources:k ~speed:1 ~delay e
          && (k = 0 || not (Capacity.feasible ~resources:(k - 1) ~speed:1 ~delay e)))

let prop_feasible_monotone =
  QCheck2.Test.make ~name:"feasibility is monotone in resources" ~count:200
    QCheck2.Gen.(pair gen_entry (int_range 0 4))
    (fun (e, resources) ->
      let delay = min 2 (e.Demand.bound - 1) in
      (not (Capacity.feasible ~resources ~speed:1 ~delay e))
      || Capacity.feasible ~resources:(resources + 1) ~speed:1 ~delay e)

(* ---- verdicts ---- *)

let test_check_verdicts () =
  let spec = spec_steady () in
  (match Capacity.check ~n:4 spec with
  | Capacity.Fits { spare; allocation } ->
      check "no spare at the minimum" 0 spare;
      Alcotest.(check (array int)) "one resource per color" [| 1; 1; 1; 1 |] allocation
  | _ -> Alcotest.fail "n=4 should fit");
  (match Capacity.check ~n:5 spec with
  | Capacity.Fits { spare; _ } -> check "one spare above" 1 spare
  | _ -> Alcotest.fail "n=5 should fit");
  match Capacity.check ~n:3 spec with
  | Capacity.Overcommitted { required; available; _ } ->
      check "required" 4 required;
      check "available" 3 available
  | _ -> Alcotest.fail "n=3 should be overcommitted"

let test_size_matches_check () =
  List.iter
    (fun (spec, expected) ->
      match Capacity.size spec with
      | Ok (n, _) -> check ("size of " ^ spec.Demand.name) expected n
      | Error message -> Alcotest.failf "size %s: %s" spec.Demand.name message)
    [ (spec_steady (), 4); (spec_mixed (), 2); (spec_bursty (), 3) ]

(* ---- sized deployments against the simulator (acceptance) ---- *)

let simulate_exn ~n spec =
  match Capacity.simulate ~rounds:400 ~n spec with
  | Ok r -> r
  | Error message -> Alcotest.failf "simulate %s: %s" spec.Demand.name message

let test_sized_deployments_zero_drops () =
  List.iter
    (fun spec ->
      match Capacity.size spec with
      | Error message -> Alcotest.failf "size %s: %s" spec.Demand.name message
      | Ok (n, _) ->
          let at_n = simulate_exn ~n spec in
          check
            (spec.Demand.name ^ ": sized deployment drops nothing")
            0 at_n.Capacity.sim_drops;
          check_bool
            (spec.Demand.name ^ ": sized deployment executes")
            true (at_n.Capacity.sim_execs > 0);
          let starved = simulate_exn ~n:(n - 1) spec in
          check_bool
            (spec.Demand.name ^ ": one resource less drops")
            true (starved.Capacity.sim_drops > 0))
    [ spec_steady (); spec_mixed (); spec_bursty () ]

(* ---- spec parse / save round-trips ---- *)

let test_spec_roundtrip () =
  let spec = { (spec_mixed ()) with n = Some 2 } in
  match Demand.parse (Demand.to_string spec) with
  | Error message -> Alcotest.failf "roundtrip: %s" message
  | Ok back ->
      Alcotest.(check string) "name" spec.Demand.name back.Demand.name;
      check "delta" spec.delta back.delta;
      check "speed" spec.speed back.speed;
      Alcotest.(check (option int)) "n" spec.n back.n;
      check "colors" (Array.length spec.entries) (Array.length back.entries);
      Array.iteri
        (fun i (e : Demand.entry) ->
          let b = back.entries.(i) in
          check_bool "entry" true
            (e.color = b.color && e.bound = b.bound && e.rate_num = b.rate_num
           && e.rate_den = b.rate_den && e.burst = b.burst))
        spec.entries

let test_spec_rejects_malformed () =
  let rejects text = check_bool text true (Result.is_error (Demand.parse text)) in
  rejects "{\"schema\":\"rrs-spec/9\",\"name\":\"x\",\"delta\":2,\"speed\":1,\"colors\":1}\n{\"color\":0,\"bound\":4,\"rate_num\":1,\"rate_den\":1,\"burst\":0}";
  (* sparse colors *)
  rejects "{\"schema\":\"rrs-spec/1\",\"name\":\"x\",\"delta\":2,\"speed\":1,\"colors\":2}\n{\"color\":1,\"bound\":4,\"rate_num\":1,\"rate_den\":1,\"burst\":0}";
  (* zero denominator *)
  rejects "{\"schema\":\"rrs-spec/1\",\"name\":\"x\",\"delta\":2,\"speed\":1,\"colors\":1}\n{\"color\":0,\"bound\":4,\"rate_num\":1,\"rate_den\":0,\"burst\":0}";
  check_bool "make rejects sparse colors" true
    (Result.is_error
       (Demand.make ~delta:2 ~speed:1 [ entry ~bound:4 ~num:1 ~den:1 1 ]))

(* ---- calibration ---- *)

let test_calibrate_synthetic () =
  (* Color 0 executes exactly once per round from round 2 on: the fit
     should recover a ~1 job/round slope with a ~2-round intercept. *)
  let rounds = 96 in
  let execs = List.init (rounds - 2) (fun i -> (i + 2, 0)) in
  let cal = Calibrate.of_exec_rounds ~colors:1 ~rounds execs in
  let fit = cal.Calibrate.cal_fits.(0) in
  check_bool "slope near 1000 mj/r" true
    (fit.Calibrate.f_rate_mjpr >= 900 && fit.f_rate_mjpr <= 1100);
  check_bool "delay near 2" true (fit.f_delay >= 1 && fit.f_delay <= 4)

let test_probe_sized_spec () =
  let spec = spec_steady () in
  match Calibrate.probe ~n:4 spec with
  | Error message -> Alcotest.failf "probe: %s" message
  | Ok cal ->
      check "one fit per color" 4 (Array.length cal.Calibrate.cal_fits);
      Array.iteri
        (fun color fit ->
          let declared = Demand.rate_mjpr spec.Demand.entries.(color) in
          check_bool
            (Printf.sprintf "color %d delivered >= declared" color)
            true
            (fit.Calibrate.f_rate_mjpr >= declared - 100);
          check_bool
            (Printf.sprintf "color %d startup within delta window" color)
            true
            (fit.Calibrate.f_delay <= 8))
        cal.Calibrate.cal_fits

let quick name f = Alcotest.test_case name `Quick f
let prop p = QCheck_alcotest.to_alcotest p

let suite =
  [
    ( "analysis.bounds",
      [
        quick "dbf values" test_dbf_values;
        quick "dbf monotone" test_dbf_monotone;
        quick "sbf values" test_sbf_values;
        quick "idle color" test_min_resources_idle;
        quick "impossible color" test_min_resources_impossible;
        prop prop_witness_feasible_agree;
        prop prop_min_resources_minimal;
        prop prop_feasible_monotone;
      ] );
    ( "analysis.capacity",
      [
        quick "check verdicts" test_check_verdicts;
        quick "size matches check" test_size_matches_check;
        quick "sized deployments: zero drops at n, drops at n-1"
          test_sized_deployments_zero_drops;
      ] );
    ( "analysis.spec",
      [
        quick "roundtrip" test_spec_roundtrip;
        quick "malformed rejected" test_spec_rejects_malformed;
      ] );
    ( "analysis.calibrate",
      [
        quick "synthetic fit" test_calibrate_synthetic;
        quick "probe of a sized spec" test_probe_sized_spec;
      ] );
  ]
