(* Data-structure substrate tests: binary heap, top-k selection, timing
   wheel, counter map, ring deque. *)

module Int_heap = Rrs_ds.Binary_heap.Make (Int)
module Topk = Rrs_ds.Topk
module Timing_wheel = Rrs_ds.Timing_wheel
module Counter_map = Rrs_ds.Counter_map
module Ring_deque = Rrs_ds.Ring_deque

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_list = Alcotest.(check (list int))

(* ---- Binary heap ---- *)

let test_heap_empty () =
  let h = Int_heap.create () in
  check_bool "empty" true (Int_heap.is_empty h);
  check "length" 0 (Int_heap.length h);
  Alcotest.check_raises "peek raises" Not_found (fun () ->
      ignore (Int_heap.peek_min h));
  Alcotest.check_raises "pop raises" Not_found (fun () ->
      ignore (Int_heap.pop_min h));
  check_list "sorted empty" [] (Int_heap.to_sorted_list h)

let test_heap_push_pop () =
  let h = Int_heap.create () in
  List.iter (Int_heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  check "length" 6 (Int_heap.length h);
  check "min" 1 (Int_heap.peek_min h);
  check "pop" 1 (Int_heap.pop_min h);
  check "pop" 2 (Int_heap.pop_min h);
  Int_heap.push h 0;
  check "pop new min" 0 (Int_heap.pop_min h);
  check_list "drain sorted" [ 3; 5; 8; 9 ] (Int_heap.to_sorted_list h)

let test_heap_duplicates () =
  let h = Int_heap.of_list [ 2; 2; 1; 1; 3 ] in
  check_list "sorted with dups" [ 1; 1; 2; 2; 3 ] (Int_heap.to_sorted_list h);
  check "length preserved" 5 (Int_heap.length h)

let test_heap_of_list_invariant () =
  let h = Int_heap.of_list [ 9; 4; 7; 1; 0; 8; 8; 2 ] in
  check_bool "invariant" true (Int_heap.check_invariant h)

let test_heap_clear () =
  let h = Int_heap.of_list [ 1; 2; 3 ] in
  Int_heap.clear h;
  check "cleared" 0 (Int_heap.length h);
  Int_heap.push h 7;
  check "reusable" 7 (Int_heap.pop_min h)

let test_heap_grow () =
  let h = Int_heap.create ~capacity:1 () in
  for i = 100 downto 1 do
    Int_heap.push h i
  done;
  check "length" 100 (Int_heap.length h);
  check_bool "invariant after growth" true (Int_heap.check_invariant h);
  check "min" 1 (Int_heap.pop_min h)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap: to_sorted_list sorts any list" ~count:200
    QCheck2.Gen.(list (int_bound 1000))
    (fun xs ->
      let h = Int_heap.of_list xs in
      Int_heap.to_sorted_list h = List.sort Int.compare xs)

let prop_heap_pop_order =
  QCheck2.Test.make ~name:"heap: pops are nondecreasing under interleaved pushes"
    ~count:200
    QCheck2.Gen.(list (int_bound 100))
    (fun xs ->
      let h = Int_heap.create () in
      let sorted = List.sort Int.compare xs in
      List.iter (Int_heap.push h) xs;
      let drained = List.init (List.length xs) (fun _ -> Int_heap.pop_min h) in
      drained = sorted && Int_heap.is_empty h)

(* ---- Topk ---- *)

let test_topk_basic () =
  check_list "3 smallest" [ 1; 2; 3 ]
    (Topk.select_list ~compare:Int.compare ~k:3 [ 7; 3; 9; 1; 5; 2 ]);
  check_list "k larger than list" [ 1; 3 ]
    (Topk.select_list ~compare:Int.compare ~k:10 [ 3; 1 ]);
  check_list "k zero" [] (Topk.select_list ~compare:Int.compare ~k:0 [ 1; 2 ]);
  check_list "k negative" [] (Topk.select_list ~compare:Int.compare ~k:(-1) [ 1 ])

let test_topk_reverse_order () =
  let compare a b = Int.compare b a in
  check_list "3 largest" [ 9; 7; 5 ]
    (Topk.select_list ~compare ~k:3 [ 7; 3; 9; 1; 5; 2 ])

let prop_topk_matches_sort =
  QCheck2.Test.make ~name:"topk: equals sorted prefix" ~count:300
    QCheck2.Gen.(pair (list (int_bound 500)) (int_bound 12))
    (fun (xs, k) ->
      let expected =
        List.sort Int.compare xs |> List.filteri (fun i _ -> i < k)
      in
      Topk.select_list ~compare:Int.compare ~k xs = expected)

(* ---- Timing wheel ---- *)

let test_wheel_basic () =
  let w = Timing_wheel.create () in
  Timing_wheel.add w ~time:3 "a";
  Timing_wheel.add w ~time:1 "b";
  Timing_wheel.add w ~time:3 "c";
  check "count" 3 (Timing_wheel.length w);
  let fired = ref [] in
  Timing_wheel.advance w ~time:4 (fun t v -> fired := (t, v) :: !fired);
  Alcotest.(check (list (pair int string)))
    "fires in time order, FIFO within a bucket"
    [ (1, "b"); (3, "a"); (3, "c") ]
    (List.rev !fired);
  check "drained" 0 (Timing_wheel.length w);
  check "now" 4 (Timing_wheel.now w)

let test_wheel_past_add_rejected () =
  let w = Timing_wheel.create () in
  Timing_wheel.advance w ~time:5 (fun _ _ -> ());
  Alcotest.check_raises "past add"
    (Invalid_argument "Timing_wheel.add: time 3 is before now 5") (fun () ->
      Timing_wheel.add w ~time:3 ())

let test_wheel_growth () =
  let w = Timing_wheel.create ~horizon:2 () in
  Timing_wheel.add w ~time:0 0;
  Timing_wheel.add w ~time:100 100;
  Timing_wheel.add w ~time:7 7;
  let fired = ref [] in
  Timing_wheel.advance w ~time:101 (fun t _ -> fired := t :: !fired);
  check_list "all fire in order" [ 0; 7; 100 ] (List.rev !fired)

let test_wheel_grow_beyond_64 () =
  (* The job pool's wheel uses a 64-slot horizon; adds past the current
     window must grow and re-slot pending values at their absolute times,
     including after a partial advance (so slot indices are offset). *)
  let w = Timing_wheel.create ~horizon:64 () in
  Timing_wheel.add w ~time:3 3;
  Timing_wheel.advance w ~time:10 (fun _ _ -> ());
  Timing_wheel.add w ~time:20 20;
  Timing_wheel.add w ~time:73 73;
  (* last slot of the 64-wide window *)
  Timing_wheel.add w ~time:74 74;
  (* first grow *)
  Timing_wheel.add w ~time:300 300;
  (* multiple doublings *)
  let fired = ref [] in
  Timing_wheel.advance w ~time:301 (fun t v -> fired := (t, v) :: !fired);
  Alcotest.(check (list (pair int int)))
    "re-slotted in time order"
    [ (20, 20); (73, 73); (74, 74); (300, 300) ]
    (List.rev !fired);
  check "drained" 0 (Timing_wheel.length w);
  check "clock at target" 301 (Timing_wheel.now w)

let test_wheel_copy () =
  let w = Timing_wheel.create () in
  Timing_wheel.add w ~time:2 "a";
  Timing_wheel.add w ~time:9 "b";
  Timing_wheel.advance w ~time:1 (fun _ _ -> ());
  let c = Timing_wheel.copy w in
  check "copy clock" (Timing_wheel.now w) (Timing_wheel.now c);
  check "copy count" 2 (Timing_wheel.length c);
  (* Advancing the copy must not disturb the original. *)
  let fired = ref [] in
  Timing_wheel.advance c ~time:10 (fun t _ -> fired := t :: !fired);
  check_list "copy fires both" [ 2; 9 ] (List.rev !fired);
  check "original still holds both" 2 (Timing_wheel.length w);
  check "original clock unchanged" 1 (Timing_wheel.now w);
  (* The copy keeps the original's clock, so past adds stay rejected. *)
  Alcotest.check_raises "copy rejects past add"
    (Invalid_argument "Timing_wheel.add: time 0 is before now 10") (fun () ->
      Timing_wheel.add c ~time:0 "x")

let test_wheel_pending_at () =
  let w = Timing_wheel.create () in
  Timing_wheel.add w ~time:2 "x";
  Timing_wheel.add w ~time:2 "y";
  Alcotest.(check (list string)) "peek" [ "x"; "y" ] (Timing_wheel.pending_at w ~time:2);
  check "peek does not remove" 2 (Timing_wheel.length w)

let prop_wheel_delivers_everything =
  QCheck2.Test.make ~name:"wheel: every add is delivered exactly once at its time"
    ~count:200
    QCheck2.Gen.(list (int_bound 200))
    (fun times ->
      let w = Timing_wheel.create ~horizon:4 () in
      List.iteri (fun i t -> Timing_wheel.add w ~time:t (i, t)) times;
      let fired = ref [] in
      Timing_wheel.advance w ~time:201 (fun t (i, t')  ->
          fired := (i, t, t') :: !fired);
      List.length !fired = List.length times
      && List.for_all (fun (_, t, t') -> t = t') !fired
      && Timing_wheel.length w = 0)

(* ---- Counter map ---- *)

let test_counter_map_basic () =
  let m = Counter_map.empty in
  let m = Counter_map.add m 5 ~count:2 in
  let m = Counter_map.add m 3 ~count:1 in
  let m = Counter_map.add m 5 ~count:1 in
  check "total" 4 (Counter_map.total m);
  check "cardinal" 2 (Counter_map.cardinal m);
  check "count 5" 3 (Counter_map.count m 5);
  Alcotest.(check (option int)) "min" (Some 3) (Counter_map.min_key m);
  let m = Counter_map.remove m 5 ~count:2 in
  check "count after remove" 1 (Counter_map.count m 5);
  let removed, m = Counter_map.remove_all m 3 in
  check "removed count" 1 removed;
  Alcotest.(check (option int)) "new min" (Some 5) (Counter_map.min_key m)

let test_counter_map_remove_min () =
  let m = Counter_map.of_list [ (4, 2); (9, 1) ] in
  (match Counter_map.remove_min m with
  | Some (4, m') ->
      check "remaining total" 2 (Counter_map.total m');
      check "remaining 4s" 1 (Counter_map.count m' 4)
  | _ -> Alcotest.fail "expected min 4");
  Alcotest.(check (option (pair int int)))
    "empty remove_min" None
    (Option.map (fun (k, m) -> (k, Counter_map.total m))
       (Counter_map.remove_min Counter_map.empty))

let test_counter_map_errors () =
  Alcotest.check_raises "negative add"
    (Invalid_argument "Counter_map.add: negative count") (fun () ->
      ignore (Counter_map.add Counter_map.empty 1 ~count:(-1)));
  Alcotest.check_raises "over-remove"
    (Invalid_argument "Counter_map.remove: not enough occurrences") (fun () ->
      ignore (Counter_map.remove (Counter_map.of_list [ (1, 1) ]) 1 ~count:2))

let prop_counter_map_total =
  QCheck2.Test.make ~name:"counter_map: total equals sum of counts" ~count:300
    QCheck2.Gen.(list (pair (int_bound 20) (int_bound 5)))
    (fun pairs ->
      let m = Counter_map.of_list pairs in
      Counter_map.total m = List.fold_left (fun acc (_, c) -> acc + c) 0 pairs
      && List.for_all (fun (_, c) -> c > 0) (Counter_map.to_list m))

(* ---- Ring deque ---- *)

let test_deque_fifo () =
  let q = Ring_deque.create () in
  List.iter (Ring_deque.push_back q) [ 1; 2; 3 ];
  check "pop front" 1 (Ring_deque.pop_front q);
  check "pop front" 2 (Ring_deque.pop_front q);
  Ring_deque.push_back q 4;
  check_list "to_list" [ 3; 4 ] (Ring_deque.to_list q)

let test_deque_both_ends () =
  let q = Ring_deque.create ~capacity:2 () in
  Ring_deque.push_front q 2;
  Ring_deque.push_front q 1;
  Ring_deque.push_back q 3;
  check_list "order" [ 1; 2; 3 ] (Ring_deque.to_list q);
  check "pop back" 3 (Ring_deque.pop_back q);
  check "peek front" 1 (Ring_deque.peek_front q);
  check "peek back" 2 (Ring_deque.peek_back q)

let test_deque_wraparound_growth () =
  let q = Ring_deque.create ~capacity:2 () in
  for i = 1 to 50 do
    Ring_deque.push_back q i;
    if i mod 3 = 0 then ignore (Ring_deque.pop_front q)
  done;
  check "length" (50 - 16) (Ring_deque.length q);
  check "front" 17 (Ring_deque.peek_front q)

let test_deque_empty_errors () =
  let q = Ring_deque.create () in
  Alcotest.check_raises "pop_front" Not_found (fun () ->
      ignore (Ring_deque.pop_front q));
  Alcotest.(check (option int)) "opt" None (Ring_deque.pop_back_opt q)

let prop_deque_mirrors_list =
  QCheck2.Test.make ~name:"deque: mirrors a model list under random ops" ~count:200
    QCheck2.Gen.(list (pair (int_bound 3) (int_bound 100)))
    (fun ops ->
      let q = Ring_deque.create ~capacity:1 () in
      let model = ref [] in
      List.iter
        (fun (op, x) ->
          match op with
          | 0 ->
              Ring_deque.push_back q x;
              model := !model @ [ x ]
          | 1 ->
              Ring_deque.push_front q x;
              model := x :: !model
          | 2 -> (
              match (Ring_deque.pop_front_opt q, !model) with
              | Some y, z :: rest when y = z -> model := rest
              | None, [] -> ()
              | _ -> failwith "mismatch")
          | _ -> (
              match (Ring_deque.pop_back_opt q, List.rev !model) with
              | Some y, z :: rest when y = z -> model := List.rev rest
              | None, [] -> ()
              | _ -> failwith "mismatch"))
        ops;
      Ring_deque.to_list q = !model)

let quick name f = Alcotest.test_case name `Quick f
let prop p = QCheck_alcotest.to_alcotest p

let suite =
  [
    ( "ds.heap",
      [
        quick "empty heap" test_heap_empty;
        quick "push/pop ordering" test_heap_push_pop;
        quick "duplicates preserved" test_heap_duplicates;
        quick "of_list heapifies" test_heap_of_list_invariant;
        quick "clear and reuse" test_heap_clear;
        quick "growth" test_heap_grow;
        prop prop_heap_sorts;
        prop prop_heap_pop_order;
      ] );
    ( "ds.topk",
      [
        quick "basic selection" test_topk_basic;
        quick "custom order" test_topk_reverse_order;
        prop prop_topk_matches_sort;
      ] );
    ( "ds.timing_wheel",
      [
        quick "ordered delivery" test_wheel_basic;
        quick "past add rejected" test_wheel_past_add_rejected;
        quick "growth" test_wheel_growth;
        quick "growth beyond the 64-slot horizon" test_wheel_grow_beyond_64;
        quick "copy preserves clock and is independent" test_wheel_copy;
        quick "pending_at peeks" test_wheel_pending_at;
        prop prop_wheel_delivers_everything;
      ] );
    ( "ds.counter_map",
      [
        quick "add/remove/count" test_counter_map_basic;
        quick "remove_min" test_counter_map_remove_min;
        quick "error cases" test_counter_map_errors;
        prop prop_counter_map_total;
      ] );
    ( "ds.ring_deque",
      [
        quick "fifo" test_deque_fifo;
        quick "both ends" test_deque_both_ends;
        quick "wraparound growth" test_deque_wraparound_growth;
        quick "empty errors" test_deque_empty_errors;
        prop prop_deque_mirrors_list;
      ] );
  ]
