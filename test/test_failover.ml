(* Sharded-serving failover tests: consistent-hash ring properties
   (balance, minimal remapping — qcheck), the per-shard health state
   machine (trip / probe backoff / re-admission on a synthetic clock),
   client deadlines against a stalled server, deterministic retry
   backoff, the feed/step never-retried-after-send contract, clean
   "cannot connect" errors, the drain-continues-past-one-failure
   contract, and a live router end-to-end: kill a shard, get clean
   errors (never a hang), bring it back, watch re-admission and
   session continuity. *)

module Wire = Rrs_server.Wire
module Server = Rrs_server.Server
module Client = Rrs_server.Client
module Router = Rrs_server.Router
module Health = Rrs_server.Health

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- ring properties (qcheck) ---- *)

let gen_shard_count = QCheck2.Gen.int_range 2 8

let ring_of n =
  Router.Ring.make (Array.init n (Printf.sprintf "shard-%d"))

let keys count = List.init count (Printf.sprintf "session-%d")

let ring_balance =
  QCheck2.Test.make ~name:"ring: virtual nodes balance key ownership"
    ~count:20 gen_shard_count (fun shards ->
      let ring = ring_of shards in
      let counts = Array.make shards 0 in
      List.iter
        (fun key ->
          let i = Router.Ring.index ring key in
          counts.(i) <- counts.(i) + 1)
        (keys 2000);
      let mx = Array.fold_left max 0 counts in
      let mn = Array.fold_left min max_int counts in
      if mn = 0 then
        QCheck2.Test.fail_reportf "a shard owns no keys: %s"
          (String.concat "," (Array.to_list (Array.map string_of_int counts)));
      (* 128 vnodes/shard keeps the spread well under 2.5x. *)
      if float_of_int mx /. float_of_int mn > 2.5 then
        QCheck2.Test.fail_reportf "imbalance %d vs %d over %d shards" mx mn
          shards;
      true)

let ring_minimal_remap =
  QCheck2.Test.make
    ~name:"ring: removing one shard remaps only its own keys" ~count:20
    gen_shard_count (fun shards ->
      let full = ring_of shards in
      let labels = Router.Ring.labels full in
      let removed = labels.(shards - 1) in
      let rest =
        Router.Ring.make (Array.sub labels 0 (shards - 1))
      in
      let moved = ref 0 and total = 2000 in
      List.iter
        (fun key ->
          let before = Router.Ring.shard full key in
          let after = Router.Ring.shard rest key in
          if before <> removed then begin
            (* A key whose owner survived must not move at all. *)
            if after <> before then
              QCheck2.Test.fail_reportf
                "key %S moved %s -> %s though %s survived" key before after
                before
          end
          else incr moved)
        (keys total);
      (* The removed shard owned ~1/N of the keys; generous bounds. *)
      let fraction = float_of_int !moved /. float_of_int total in
      let expected = 1. /. float_of_int shards in
      if fraction > 2.5 *. expected then
        QCheck2.Test.fail_reportf "removed shard owned %.3f of keys (~%.3f)"
          fraction expected;
      true)

let test_ring_stability () =
  (* Same labels, same ring, whatever the construction order — a
     restarted router must route identically. *)
  let a = Router.Ring.make [| "alpha"; "beta"; "gamma" |] in
  let b = Router.Ring.make [| "alpha"; "beta"; "gamma" |] in
  List.iter
    (fun key ->
      Alcotest.(check string)
        key
        (Router.Ring.shard a key)
        (Router.Ring.shard b key))
    (keys 200);
  (match Router.Ring.make [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty ring must be refused");
  match Router.Ring.make ~replicas:0 [| "a" |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "replicas=0 must be refused"

let test_ring_scatters_similar_keys () =
  (* Session names differing in one trailing character must not clump
     onto one shard (the raw-FNV failure mode the fmix64 finalizer
     exists to prevent). *)
  let ring = ring_of 2 in
  let owners =
    List.map (fun i -> Router.Ring.index ring (Printf.sprintf "fo-%d" i))
      (List.init 16 Fun.id)
  in
  check_bool "similar keys hit both shards" true
    (List.exists (fun o -> o = 0) owners
    && List.exists (fun o -> o = 1) owners)

(* ---- health state machine (synthetic clock) ---- *)

let test_health_trip_and_readmit () =
  let h = Health.create ~fail_threshold:3 ~probe_interval_ms:100 () in
  check_bool "starts up" true (Health.is_up h);
  Health.fail h ~now_ms:0 ~reason:"a";
  Health.fail h ~now_ms:1 ~reason:"b";
  check_bool "below threshold stays up" true (Health.is_up h);
  (* A success resets the streak: two more failures don't trip it. *)
  Health.ok h;
  Health.fail h ~now_ms:2 ~reason:"c";
  Health.fail h ~now_ms:3 ~reason:"d";
  check_bool "streak reset by success" true (Health.is_up h);
  Health.fail h ~now_ms:4 ~reason:"down now";
  check_bool "trips at threshold" false (Health.is_up h);
  Alcotest.(check string) "last error kept" "down now" (Health.last_error h);
  let failures, trips, readmits = Health.counters h in
  check "failures" 5 failures;
  check "trips" 1 trips;
  check "readmits" 0 readmits;
  Health.ok h;
  check_bool "ok re-admits" true (Health.is_up h);
  let _, _, readmits = Health.counters h in
  check "readmit counted" 1 readmits

let test_health_probe_backoff () =
  let h =
    Health.create ~fail_threshold:1 ~probe_interval_ms:100 ~probe_max_ms:400 ()
  in
  Health.fail h ~now_ms:1_000 ~reason:"dead";
  check_bool "no probe before the interval" false (Health.probe_due h ~now_ms:1_050);
  check_bool "probe due after interval" true (Health.probe_due h ~now_ms:1_100);
  (* Each failed probe doubles the wait: 200, then 400, then capped. *)
  Health.probe_failed h ~now_ms:1_100 ~reason:"still dead";
  check_bool "not due at +100" false (Health.probe_due h ~now_ms:1_200);
  check_bool "due at +200" true (Health.probe_due h ~now_ms:1_300);
  Health.probe_failed h ~now_ms:1_300 ~reason:"still dead";
  check_bool "due at +400" true (Health.probe_due h ~now_ms:1_700);
  Health.probe_failed h ~now_ms:1_700 ~reason:"still dead";
  check_bool "capped at probe_max" true (Health.probe_due h ~now_ms:2_100);
  (* Re-admission resets the backoff to the base interval. *)
  Health.ok h;
  Health.fail h ~now_ms:3_000 ~reason:"again";
  check_bool "backoff reset after readmit" true
    (Health.probe_due h ~now_ms:3_100);
  check_bool "up shards never probe" false
    (let fresh = Health.create () in
     Health.probe_due fresh ~now_ms:10_000_000)

(* ---- client deadlines and retry ---- *)

(* A listener that accepts and then ignores its clients: connects
   succeed, replies never come. *)
let with_stalled_listener f =
  let path = Filename.temp_file "rrs_stall" ".sock" in
  Sys.remove path;
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen (Unix.ADDR_UNIX path);
  Unix.listen listen 8;
  Fun.protect
    ~finally:(fun () ->
      Unix.close listen;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f (Server.Unix_socket path))

let test_deadline_on_stalled_server () =
  with_stalled_listener (fun address ->
      let client = Client.connect address in
      let t0 = Unix.gettimeofday () in
      (match
         Client.call ~deadline_ms:200 client (Wire.Stats { session = "s" })
       with
      | Error _ -> ()
      | Ok frame ->
          Alcotest.failf "stalled server answered: %s" (Wire.encode frame));
      let elapsed = Unix.gettimeofday () -. t0 in
      check_bool
        (Printf.sprintf "returned near the deadline (%.3fs)" elapsed)
        true
        (elapsed >= 0.15 && elapsed < 1.5);
      check_bool "connection marked broken" true (Client.is_broken client);
      Client.close client)

let test_backoff_deterministic () =
  let sequence seed =
    let r = Client.retry_policy ~attempts:6 ~base_ms:50 ~max_ms:2_000 ~seed () in
    List.map (fun attempt -> Client.backoff_ms r ~attempt) [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check (list int))
    "same seed, same jitter stream" (sequence 42) (sequence 42);
  check_bool "different seeds diverge" true (sequence 42 <> sequence 43);
  (* Every value stays within [base, base + base/2 + 1] for its
     attempt, with the exponential capped at max_ms. *)
  List.iteri
    (fun i backoff ->
      let base = min (50 * (1 lsl i)) 2_000 in
      check_bool
        (Printf.sprintf "attempt %d: %d within [%d, %d]" (i + 1) backoff base
           (base + (base / 2) + 1))
        true
        (backoff >= base && backoff <= base + (base / 2) + 1))
    (sequence 7)

let test_idempotence_classification () =
  check_bool "hello replays safely" true
    (Client.idempotent (Wire.Hello { client_version = Wire.version }));
  check_bool "stats replays safely" true
    (Client.idempotent (Wire.Stats { session = "s" }));
  check_bool "metrics replays safely" true
    (Client.idempotent (Wire.Metrics { slow = 0 }));
  check_bool "feed must not replay" false
    (Client.idempotent (Wire.Feed { session = "s"; colors = [| 0 |]; counts = [| 1 |]; decl = None }));
  check_bool "step must not replay" false
    (Client.idempotent (Wire.Step { session = "s"; rounds = 1 }));
  check_bool "close must not replay" false
    (Client.idempotent (Wire.Close { session = "s" }))

(* A server that accepts, reads a little, then slams the connection:
   every call fails after its bytes were written. *)
let with_slamming_listener f =
  let path = Filename.temp_file "rrs_slam" ".sock" in
  Sys.remove path;
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen (Unix.ADDR_UNIX path);
  Unix.listen listen 16;
  let stop = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          match Unix.select [ listen ] [] [] 0.05 with
          | [], _, _ -> ()
          | _ ->
              let fd, _ = Unix.accept listen in
              let buf = Bytes.create 256 in
              (try ignore (Unix.read fd buf 0 256) with Unix.Unix_error _ -> ());
              (try Unix.close fd with Unix.Unix_error _ -> ())
        done)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join server;
      Unix.close listen;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f (Server.Unix_socket path))

let test_mutations_never_retried_after_send () =
  with_slamming_listener (fun address ->
      let sleeps = ref [] in
      let retry =
        Client.retry_policy ~attempts:3 ~base_ms:1 ~max_ms:2 ~seed:7
          ~sleep_ms:(fun ms -> sleeps := ms :: !sleeps)
          ()
      in
      let endpoint = Client.Endpoint.create ~retry ~timeout_ms:500 address in
      (* A step that failed mid-flight may have applied: one attempt
         only, and the error says why. *)
      (match
         Client.Endpoint.call endpoint (Wire.Step { session = "s"; rounds = 1 })
       with
      | Ok frame -> Alcotest.failf "slammed call succeeded: %s" (Wire.encode frame)
      | Error message ->
          check_bool
            (Printf.sprintf "error explains the no-retry (%s)" message)
            true
            (let marker = "not retried" in
             let rec find i =
               if i + String.length marker > String.length message then false
               else
                 String.sub message i (String.length marker) = marker
                 || find (i + 1)
             in
             find 0));
      check "no backoff sleeps for a mutation" 0 (List.length !sleeps);
      (* The idempotent probe on the same endpoint IS retried. *)
      (match Client.Endpoint.call endpoint (Wire.Stats { session = "s" }) with
      | Ok frame -> Alcotest.failf "slammed stats succeeded: %s" (Wire.encode frame)
      | Error _ -> ());
      check "stats retried to the attempt cap" 2 (List.length !sleeps);
      Client.Endpoint.close endpoint)

let test_connect_refused_retries_any_frame () =
  let sleeps = ref [] in
  let retry =
    Client.retry_policy ~attempts:3 ~base_ms:1 ~max_ms:2 ~seed:7
      ~sleep_ms:(fun ms -> sleeps := ms :: !sleeps)
      ()
  in
  let endpoint =
    Client.Endpoint.create ~retry ~timeout_ms:200
      (Server.Unix_socket "/nonexistent/rrs/refused.sock")
  in
  (match
     Client.Endpoint.call endpoint
       (Wire.Feed { session = "s"; colors = [| 0 |]; counts = [| 1 |]; decl = None })
   with
  | Ok _ -> Alcotest.fail "connect to nowhere succeeded"
  | Error message ->
      check_bool "cannot-connect error" true
        (String.length message >= 14
        && String.sub message 0 14 = "cannot connect"));
  (* No bytes ever left: even a feed is retried on connect failure. *)
  check "feed retried across connects" 2 (List.length !sleeps);
  Client.Endpoint.close endpoint

let test_try_connect_clean_errors () =
  (match Client.try_connect (Server.Unix_socket "/nonexistent/rrs/x.sock") with
  | Ok _ -> Alcotest.fail "dead socket connected"
  | Error message ->
      check_bool "names the failure" true
        (String.length message >= 14
        && String.sub message 0 14 = "cannot connect"));
  match Client.try_connect ~timeout_ms:500 (Server.Tcp ("host.invalid", 4242)) with
  | Ok _ -> Alcotest.fail "unresolvable host connected"
  | Error message ->
      check_bool "names the host" true
        (String.length message >= 14
        && String.sub message 0 14 = "cannot connect")

(* ---- drain continues past one failing session ---- *)

let test_drain_survives_one_failing_snapshot () =
  let dir = Filename.temp_file "rrs_drain" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let snap_dir = Filename.concat dir "snaps" in
  let address = Server.Unix_socket (Filename.concat dir "sock") in
  let server =
    Server.start
      { (Server.default_config address) with domains = 2;
        snap_dir = Some snap_dir }
  in
  let client = Client.connect address in
  let open_session name =
    match
      Client.call client
        (Wire.Open
           { session = name; policy = "dlru"; delta = 2; bounds = [| 2; 3 |];
             n = 3; speed = 1; horizon = 0; queue_limit = 0; decl = None })
    with
    | Ok (Wire.Opened _) -> ()
    | Ok frame -> Alcotest.failf "open %s: %s" name (Wire.encode frame)
    | Error message -> Alcotest.failf "open %s: %s" name message
  in
  open_session "doomed";
  open_session "survivor";
  Client.close client;
  (* Block the doomed session's atomic snapshot write: its tmp path is
     already a directory, so open_out raises inside the drain. *)
  Unix.mkdir (Filename.concat snap_dir "doomed.sess.jsonl.tmp") 0o700;
  let drained = Server.stop ~drain:true server in
  check "only the survivor drained" 1 drained;
  check_bool "survivor snapshot written" true
    (Sys.file_exists (Filename.concat snap_dir "survivor.sess.jsonl"));
  check_bool "doomed snapshot absent" false
    (Sys.file_exists (Filename.concat snap_dir "doomed.sess.jsonl"))

(* ---- live router end-to-end: crash, clean errors, re-admission ---- *)

let test_router_failover_live () =
  let dir = Filename.temp_file "rrs_route" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let shard_sock i = Filename.concat dir (Printf.sprintf "s%d.sock" i) in
  let shard_snaps i = Filename.concat dir (Printf.sprintf "s%d.snaps" i) in
  let shard_config i =
    Unix.mkdir (shard_snaps i) 0o700;
    { (Server.default_config (Server.Unix_socket (shard_sock i))) with
      domains = 2; snap_dir = Some (shard_snaps i); autosnap = true;
      checkpoint_every = 1 }
  in
  let config0 = shard_config 0 and config1 = shard_config 1 in
  let shard0 = ref (Server.start config0) in
  let shard1 = ref (Server.start config1) in
  let front = Server.Unix_socket (Filename.concat dir "front.sock") in
  let router =
    Router.start
      { (Router.default_config ~address:front
           ~shards:
             [ { Router.shard_label = "s0";
                 shard_address = Server.Unix_socket (shard_sock 0) };
               { Router.shard_label = "s1";
                 shard_address = Server.Unix_socket (shard_sock 1) } ])
        with
        Router.timeout_ms = 500; connect_timeout_ms = 300; fail_threshold = 1;
        probe_interval_ms = 25; domains = 2 }
  in
  Fun.protect
    ~finally:(fun () ->
      Router.stop router;
      ignore (Server.stop ~drain:false !shard0);
      ignore (Server.stop ~drain:false !shard1))
    (fun () ->
      (* Find one session name per shard. *)
      let session_on label =
        let rec go i =
          let name = Printf.sprintf "live-%d" i in
          if Router.shard_of_session router name = label then name
          else go (i + 1)
        in
        go 0
      in
      let on0 = session_on "s0" and on1 = session_on "s1" in
      let client = Client.connect front in
      let call frame = Client.call ~deadline_ms:2_000 client frame in
      let open_and_step name =
        (match
           call
             (Wire.Open
                { session = name; policy = "dlru"; delta = 2;
                  bounds = [| 2; 3 |]; n = 3; speed = 1; horizon = 0;
                  queue_limit = 0; decl = None })
         with
        | Ok (Wire.Opened _) -> ()
        | other ->
            Alcotest.failf "open %s: %s" name
              (match other with Ok f -> Wire.encode f | Error e -> e));
        ignore
          (call (Wire.Feed { session = name; colors = [| 0 |]; counts = [| 2 |]; decl = None }));
        match call (Wire.Step { session = name; rounds = 1 }) with
        | Ok (Wire.Stepped { round; _ }) -> round
        | other ->
            Alcotest.failf "step %s: %s" name
              (match other with Ok f -> Wire.encode f | Error e -> e)
      in
      let round0 = open_and_step on0 in
      let _round1 = open_and_step on1 in
      check "both shards admitted" 2 (Router.shards_up router);
      (* Crash shard 0 (no drain — autosnap checkpoints are all it
         has), then demand a clean, quick error for its session. *)
      ignore (Server.stop ~drain:false !shard0);
      let t0 = Unix.gettimeofday () in
      (match call (Wire.Stats { session = on0 }) with
      | Ok (Wire.Error_frame _) -> ()
      | Ok frame ->
          Alcotest.failf "dead shard answered: %s" (Wire.encode frame)
      | Error message -> Alcotest.failf "front connection died: %s" message);
      check_bool "error was immediate, not a hang" true
        (Unix.gettimeofday () -. t0 < 1.5);
      (* The other shard's session must be completely unaffected. *)
      (match call (Wire.Stats { session = on1 }) with
      | Ok (Wire.Stats_ok _) -> ()
      | other ->
          Alcotest.failf "surviving session failed: %s"
            (match other with Ok f -> Wire.encode f | Error e -> e));
      (* While s0 is down its requests keep failing cleanly. *)
      (match call (Wire.Step { session = on0; rounds = 1 }) with
      | Ok (Wire.Error_frame _) -> ()
      | other ->
          Alcotest.failf "down shard step: %s"
            (match other with Ok f -> Wire.encode f | Error e -> e));
      (* Restart the shard on the same state; the prober re-admits it
         and the session resumes from its checkpoint. *)
      shard0 := Server.start config0;
      let deadline = Unix.gettimeofday () +. 10. in
      let rec await_recovery () =
        match call (Wire.Stats { session = on0 }) with
        | Ok (Wire.Stats_ok { round; _ }) -> round
        | Ok (Wire.Error_frame _) | Error _ ->
            if Unix.gettimeofday () >= deadline then
              Alcotest.fail "shard never re-admitted"
            else begin
              Unix.sleepf 0.05;
              await_recovery ()
            end
        | Ok frame -> Alcotest.failf "unexpected reply %s" (Wire.encode frame)
      in
      let recovered_round = await_recovery () in
      (* checkpoint_every = 1: the acked round survived the crash. *)
      check "no acked rounds lost" round0 recovered_round;
      check "both shards admitted again" 2 (Router.shards_up router);
      Client.close client)

let suite =
  [
    ( "failover.ring",
      [
        QCheck_alcotest.to_alcotest ring_balance;
        QCheck_alcotest.to_alcotest ring_minimal_remap;
        Alcotest.test_case "deterministic across constructions" `Quick
          test_ring_stability;
        Alcotest.test_case "near-identical names scatter" `Quick
          test_ring_scatters_similar_keys;
      ] );
    ( "failover.health",
      [
        Alcotest.test_case "trip at threshold, readmit on ok" `Quick
          test_health_trip_and_readmit;
        Alcotest.test_case "probe backoff doubles and caps" `Quick
          test_health_probe_backoff;
      ] );
    ( "failover.client",
      [
        Alcotest.test_case "deadline bounds a stalled server" `Quick
          test_deadline_on_stalled_server;
        Alcotest.test_case "backoff is deterministic under a seed" `Quick
          test_backoff_deterministic;
        Alcotest.test_case "idempotence classification" `Quick
          test_idempotence_classification;
        Alcotest.test_case "mutations are never retried after send" `Quick
          test_mutations_never_retried_after_send;
        Alcotest.test_case "connect-refused retries any frame" `Quick
          test_connect_refused_retries_any_frame;
        Alcotest.test_case "try_connect fails with clean messages" `Quick
          test_try_connect_clean_errors;
      ] );
    ( "failover.server",
      [
        Alcotest.test_case "drain survives one failing snapshot" `Quick
          test_drain_survives_one_failing_snapshot;
      ] );
    ( "failover.router",
      [
        Alcotest.test_case "crash -> clean errors -> re-admission" `Quick
          test_router_failover_live;
      ] );
  ]
