(* Fault-layer tests: plan normalization and serialization, crash/repair
   and failed-reconfiguration engine semantics, empty-plan byte-identity,
   the abort record on policy exceptions, sweep failure isolation with
   bounded retry, and ledger conservation under random fault plans. *)

module Instance = Rrs_sim.Instance
module Engine = Rrs_sim.Engine
module Ledger = Rrs_sim.Ledger
module Schedule = Rrs_sim.Schedule
module Fault = Rrs_sim.Fault
module Fault_gen = Rrs_workload.Fault_gen
module Event_sink = Rrs_sim.Event_sink
module Sweep = Rrs_sim.Sweep
module Report = Rrs_stats.Report
module H = Test_helpers

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let policy : (module Rrs_sim.Policy.POLICY) = (module Rrs_core.Policy_lru_edf)

(* The paper policies cache [n/2] colors, so with [n = 1] they never
   configure anything; the single-location fault tests need a policy that
   actually attempts reconfigurations. Greedy: always want color 0. *)
let greedy_policy : (module Rrs_sim.Policy.POLICY) =
  (module struct
    type t = unit

    let name = "greedy0"
    let create ~n:_ ~delta:_ ~bounds:_ = ()
    let on_drop _ ~round:_ ~dropped:_ = ()
    let on_arrival _ ~round:_ ~request:_ = ()
    let reconfigure () (view : Rrs_sim.Policy.view) = Array.make view.n (Some 0)
    let stats () = []
    let serialize () = "{}"
    let deserialize () _ = ()
  end)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let crash ~location ~from_round ~until_round =
  { Fault.location; from_round; until_round }

let fail_at ~round ~location = { Fault.rf_round = round; rf_location = location }

(* ---- plan construction ---- *)

let test_make_normalizes () =
  let plan =
    Fault.make
      ~crashes:
        [
          crash ~location:1 ~from_round:0 ~until_round:3;
          crash ~location:0 ~from_round:5 ~until_round:8;
          crash ~location:0 ~from_round:2 ~until_round:5; (* touches [5,8) *)
        ]
      ~reconfig_failures:
        [
          fail_at ~round:4 ~location:1;
          fail_at ~round:1 ~location:0;
          fail_at ~round:4 ~location:1; (* duplicate *)
        ]
      ()
  in
  (* Location 0's touching windows merged into [2, 8). *)
  check "crash windows" 2 (Fault.crash_count plan);
  check "offline rounds" (6 + 3) (Fault.offline_location_rounds plan);
  check "failures deduped" 2 (Fault.reconfig_failure_count plan);
  check_bool "not empty" false (Fault.is_empty plan);
  check_bool "empty is empty" true (Fault.is_empty Fault.empty)

let test_make_invalid () =
  let invalid f = match f () with
    | exception Fault.Invalid _ -> ()
    | _ -> Alcotest.fail "expected Fault.Invalid"
  in
  invalid (fun () ->
      Fault.make
        ~crashes:[ crash ~location:0 ~from_round:3 ~until_round:3 ]
        ~reconfig_failures:[] ());
  invalid (fun () ->
      Fault.make
        ~crashes:[ crash ~location:(-1) ~from_round:0 ~until_round:2 ]
        ~reconfig_failures:[] ());
  invalid (fun () ->
      Fault.make ~crashes:[]
        ~reconfig_failures:[ fail_at ~round:(-2) ~location:0 ]
        ())

let test_roundtrip () =
  let plan =
    Fault.make ~name:"rt \"quoted\"" ~seed:42
      ~crashes:[ crash ~location:2 ~from_round:1 ~until_round:9 ]
      ~reconfig_failures:[ fail_at ~round:3 ~location:0 ]
      ()
  in
  (match Fault.parse (Fault.to_string plan) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok plan' ->
      check_string "serialization fixpoint" (Fault.to_string plan)
        (Fault.to_string plan'));
  let path = Filename.temp_file "rrs_faults" ".json" in
  Fault.save plan ~path;
  (match Fault.load ~path with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok plan' ->
      check_string "save/load fixpoint" (Fault.to_string plan)
        (Fault.to_string plan'));
  Sys.remove path

let test_parse_errors () =
  let expect_error s =
    match Fault.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parse accepted %S" s
  in
  expect_error "";
  expect_error "{\"schema\":\"rrs-faults/999\",\"name\":\"x\",\"seed\":0}\n";
  expect_error
    "{\"schema\":\"rrs-faults/1\",\"name\":\"x\",\"seed\":0}\n\
     {\"type\":\"mystery\",\"location\":0}\n";
  expect_error
    "{\"schema\":\"rrs-faults/1\",\"name\":\"x\",\"seed\":0}\n\
     {\"type\":\"crash\",\"location\":0,\"from\":5,\"until\":5}\n"

let test_compile_bounds () =
  let plan =
    Fault.make
      ~crashes:[ crash ~location:3 ~from_round:0 ~until_round:4 ]
      ~reconfig_failures:[] ()
  in
  (match Fault.compile plan ~n:2 ~horizon:10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "location >= n must raise");
  (* A window past the horizon is clipped: crash fires, repair never
     does. *)
  let compiled = Fault.compile plan ~n:8 ~horizon:2 in
  check "clipped crash" 1 (List.length (Fault.crashes_at compiled ~round:0));
  for round = 0 to 1 do
    check
      (Printf.sprintf "no repair at %d" round)
      0
      (List.length (Fault.repairs_at compiled ~round))
  done

(* ---- engine semantics ---- *)

let small_instance ?(horizon = 96) ?(seed = 5) () =
  Rrs_workload.Random_workloads.uniform ~seed ~colors:6 ~delta:3
    ~bound_log_range:(0, 3) ~horizon ~load:0.9 ~rate_limited:true ()

let trace_to_file ?faults ~n instance =
  let path = Filename.temp_file "rrs_fault_events" ".jsonl" in
  let channel = open_out path in
  let result =
    Fun.protect
      ~finally:(fun () -> close_out channel)
      (fun () ->
        Engine.run ~sink:(Event_sink.Jsonl channel) ?faults ~n ~policy
          instance)
  in
  (path, result)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_empty_plan_byte_identical () =
  let instance = small_instance () in
  let base_path, base = trace_to_file ~n:4 instance in
  let empty_path, empty = trace_to_file ~faults:Fault.empty ~n:4 instance in
  check "cost identical" (Ledger.total_cost base.Engine.ledger)
    (Ledger.total_cost empty.Engine.ledger);
  check_bool "stream byte-identical" true
    (read_file base_path = read_file empty_path);
  Sys.remove base_path;
  Sys.remove empty_path

let test_total_blackout () =
  (* The only location is offline for the whole run: nothing executes,
     nothing reconfigures, every job drops. *)
  let instance = small_instance ~horizon:48 () in
  let faults =
    Fault.make
      ~crashes:
        [ crash ~location:0 ~from_round:0 ~until_round:instance.Instance.horizon ]
      ~reconfig_failures:[] ()
  in
  let result = Engine.run ~record_events:true ~faults ~n:1 ~policy instance in
  check "no execs" 0 (Ledger.exec_count result.Engine.ledger);
  check "no reconfigs" 0 (Ledger.reconfig_count result.Engine.ledger);
  check "all jobs drop"
    (Instance.total_jobs instance)
    (Ledger.drop_count result.Engine.ledger);
  let schedule = Schedule.of_run ~instance ~n:1 ~speed:1 result.Engine.ledger in
  match Schedule.validate schedule with
  | Ok () -> ()
  | Error errors -> Alcotest.failf "invalid: %s" (List.hd errors)

let test_reconfig_failure_pays () =
  (* One job, one location; every reconfiguration in the first two rounds
     is poisoned. The policy keeps retrying: each attempt pays delta but
     the location stays black, so the job can only execute once the
     poisoning ends (or drops if its deadline passes first). *)
  let instance =
    Instance.make ~delta:2 ~bounds:[| 4 |] ~arrivals:[ (0, [ (0, 1) ]) ] ()
  in
  let faults =
    Fault.make ~crashes:[]
      ~reconfig_failures:
        [ fail_at ~round:0 ~location:0; fail_at ~round:1 ~location:0 ]
      ()
  in
  let result =
    Engine.run ~record_events:true ~faults ~n:1 ~policy:greedy_policy instance
  in
  let ledger = result.Engine.ledger in
  check "failed attempts" 2 (Ledger.failed_reconfig_count ledger);
  check "job still executes" 1 (Ledger.exec_count ledger);
  check "no drops" 0 (Ledger.drop_count ledger);
  (* 2 failed + 1 successful reconfig, all paid. *)
  check "reconfigs include failures" 3 (Ledger.reconfig_count ledger);
  check "cost counts failures"
    ((3 * 2) + 0)
    (Ledger.total_cost ledger);
  let schedule = Schedule.of_run ~instance ~n:1 ~speed:1 ledger in
  match Schedule.validate schedule with
  | Ok () -> ()
  | Error errors -> Alcotest.failf "invalid: %s" (List.hd errors)

let test_offline_probe_matches_plan () =
  let instance = small_instance () in
  let n = 4 in
  let faults =
    Fault_gen.random ~seed:9 ~n ~horizon:instance.Instance.horizon
      ~crash_density:0.2 ~reconfig_fail_rate:0.05 ()
  in
  let probes = Rrs_obs.Probe.create_registry () in
  let result = Engine.run ~probes ~faults ~n ~policy instance in
  let stat key = H.stat result.Engine.stats key in
  (* Plan horizon = instance horizon, so no clipping: the offline
     histogram sums exactly the plan's offline location-rounds. *)
  check "offline location-rounds"
    (Fault.offline_location_rounds faults)
    (stat "offline_locations_sum");
  check "failed reconfigs probe"
    (Ledger.failed_reconfig_count result.Engine.ledger)
    (stat "failed_reconfigs")

(* A policy that behaves like dlru-edf until [crash_round], then raises. *)
let crashing_policy ~crash_round : (module Rrs_sim.Policy.POLICY) =
  (module struct
    module P = Rrs_core.Policy_lru_edf

    let name = "crash-at-" ^ string_of_int crash_round

    type t = P.t

    let create = P.create
    let on_drop = P.on_drop
    let on_arrival = P.on_arrival

    let reconfigure t view =
      if view.Rrs_sim.Policy.round >= crash_round then
        failwith "policy exploded";
      P.reconfigure t view

    let stats = P.stats
    let serialize = P.serialize
    let deserialize = P.deserialize
  end)

let test_abort_record_on_policy_exception () =
  let instance = small_instance () in
  let path = Filename.temp_file "rrs_abort" ".jsonl" in
  let channel = open_out path in
  (match
     Fun.protect
       ~finally:(fun () -> close_out channel)
       (fun () ->
         Engine.run
           ~sink:(Event_sink.Jsonl channel)
           ~n:4
           ~policy:(crashing_policy ~crash_round:7)
           instance)
   with
  | _ -> Alcotest.fail "expected the policy exception to propagate"
  | exception Failure _ -> ());
  let contents = read_file path in
  check_bool "aborted record written" true
    (let lines = String.split_on_char '\n' contents in
     List.exists
       (fun l ->
         String.length l > 0
         &&
         match Event_sink.parse_line l with
         | Ok (Event_sink.Aborted { ab_round = 7; ab_reason }) ->
             ab_reason = "Failure(\"policy exploded\")"
         | _ -> false)
       lines);
  (* The reader reports the abort, not a generic truncation. *)
  (match Report.of_path path with
  | Error message ->
      check_bool "report names the abort" true
        (contains ~affix:"aborted at round 7" message)
  | Ok _ -> Alcotest.fail "report must reject an aborted stream");
  Sys.remove path

(* ---- sweep isolation and retry ---- *)

let sweep_tasks ?faults () =
  List.map
    (fun seed ->
      Sweep.task
        ~key:(Printf.sprintf "ok/seed=%d" seed)
        ?faults ~policy ~n:4
        (small_instance ~seed ()))
    [ 1; 2; 3 ]

let test_sweep_isolates_crash () =
  let tasks =
    sweep_tasks ()
    @ [
        Sweep.task ~key:"bad/seed=9"
          ~policy:(crashing_policy ~crash_round:0)
          ~n:4 (small_instance ~seed:9 ());
      ]
  in
  let results = Sweep.run_results ~domains:2 tasks in
  check "all tasks reported" 4 (List.length results);
  let oks, errors =
    List.partition_map
      (function Ok o -> Left o | Error f -> Right f)
      results
  in
  check "survivors" 3 (List.length oks);
  (match errors with
  | [ f ] ->
      check_string "failed key" "bad/seed=9" f.Sweep.key;
      check_bool "exception text" true
        (f.Sweep.exn_text = "Failure(\"policy exploded\")");
      check "single attempt (not transient)" 1 f.Sweep.attempts
  | _ -> Alcotest.fail "expected exactly one failure");
  (* Sweep.run converts the failure into an attributable Failure. *)
  match Sweep.run ~domains:2 tasks with
  | _ -> Alcotest.fail "run must raise on a failed task"
  | exception Failure message ->
      check_bool "run names the key" true
        (contains ~affix:"bad/seed=9" message)

(* Raises Sys_error on the first [transient_failures] creations, then
   works — the shape of a sink whose disk was briefly full. *)
let flaky_policy ~failures_left : (module Rrs_sim.Policy.POLICY) =
  (module struct
    module P = Rrs_core.Policy_lru_edf

    let name = "flaky"

    type t = P.t

    let create ~n ~delta ~bounds =
      if !failures_left > 0 then begin
        decr failures_left;
        raise (Sys_error "transient: disk full")
      end;
      P.create ~n ~delta ~bounds

    let on_drop = P.on_drop
    let on_arrival = P.on_arrival
    let reconfigure = P.reconfigure
    let stats = P.stats
    let serialize = P.serialize
    let deserialize = P.deserialize
  end)

let test_sweep_retries_transient () =
  let failures_left = ref 1 in
  let tasks =
    [
      Sweep.task ~key:"flaky" ~policy:(flaky_policy ~failures_left) ~n:4
        (small_instance ());
    ]
  in
  (match Sweep.run_results ~domains:1 ~retries:1 tasks with
  | [ Ok outcome ] -> check_string "recovered" "flaky" outcome.Sweep.key
  | [ Error f ] -> Alcotest.failf "retry should recover: %s" f.Sweep.exn_text
  | _ -> Alcotest.fail "one result expected");
  (* With retries exhausted the Sys_error is a terminal failure. *)
  let failures_left = ref 10 in
  match
    Sweep.run_results ~domains:1 ~retries:2
      [
        Sweep.task ~key:"flaky" ~policy:(flaky_policy ~failures_left) ~n:4
          (small_instance ());
      ]
  with
  | [ Error f ] -> check "attempts recorded" 3 f.Sweep.attempts
  | _ -> Alcotest.fail "expected terminal failure"

let test_faulted_sweep_deterministic_across_domains () =
  let faults =
    Fault_gen.random ~seed:3 ~n:4 ~horizon:120 ~crash_density:0.15
      ~reconfig_fail_rate:0.02 ()
  in
  let outcomes domains = Sweep.run ~domains (sweep_tasks ~faults ()) in
  let a = outcomes 1 and b = outcomes 3 in
  check_bool "outcomes byte-identical across domain counts" true
    (List.for_all2
       (fun (x : Sweep.outcome) (y : Sweep.outcome) ->
         x.key = y.key && x.cost = y.cost
         && x.reconfig_count = y.reconfig_count
         && x.drop_count = y.drop_count
         && x.exec_count = y.exec_count && x.stats = y.stats)
       a b)

(* ---- properties ---- *)

(* Every instance covers its deadlines (Instance.make guarantees it), so
   at the horizon each job was executed or dropped: the ledger conserves
   jobs under any fault plan, and the fault-aware validator accepts the
   replay. *)
let prop_conservation_under_faults =
  QCheck2.Test.make ~name:"ledger conserves jobs under random faults"
    ~count:60
    QCheck2.Gen.(
      pair H.gen_rate_limited (pair (int_bound 10_000) (int_range 1 6)))
    (fun (instance, (fault_seed, n)) ->
      let faults =
        Fault_gen.random ~seed:fault_seed ~n
          ~horizon:instance.Instance.horizon ~crash_density:0.25
          ~mean_outage:4 ~reconfig_fail_rate:0.1 ()
      in
      let result =
        Engine.run ~record_events:true ~faults ~n ~policy instance
      in
      let ledger = result.Engine.ledger in
      let conserved =
        Instance.total_jobs instance
        = Ledger.exec_count ledger + Ledger.drop_count ledger
      in
      let valid =
        match
          Schedule.validate
            (Schedule.of_run ~instance ~n ~speed:1 ledger)
        with
        | Ok () -> true
        | Error errors ->
            QCheck2.Test.fail_reportf "invalid schedule: %s" (List.hd errors)
      in
      let cost_formula =
        Ledger.total_cost ledger
        = (instance.Instance.delta * Ledger.reconfig_count ledger)
          + Ledger.drop_count ledger
      in
      conserved && valid && cost_formula)

let prop_empty_plan_same_cost =
  QCheck2.Test.make ~name:"empty fault plan changes nothing" ~count:30
    H.gen_rate_limited (fun instance ->
      Engine.cost ~n:3 ~policy instance
      = Engine.cost ~faults:Fault.empty ~n:3 ~policy instance)

let prop = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "fault.plan",
      [
        Alcotest.test_case "normalization" `Quick test_make_normalizes;
        Alcotest.test_case "invalid plans" `Quick test_make_invalid;
        Alcotest.test_case "serialization round trip" `Quick test_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "compile bounds + clipping" `Quick
          test_compile_bounds;
      ] );
    ( "fault.engine",
      [
        Alcotest.test_case "empty plan byte-identical" `Quick
          test_empty_plan_byte_identical;
        Alcotest.test_case "total blackout" `Quick test_total_blackout;
        Alcotest.test_case "failed reconfigs pay" `Quick
          test_reconfig_failure_pays;
        Alcotest.test_case "offline probe matches plan" `Quick
          test_offline_probe_matches_plan;
        Alcotest.test_case "abort record on exception" `Quick
          test_abort_record_on_policy_exception;
      ] );
    ( "fault.sweep",
      [
        Alcotest.test_case "crash isolation" `Quick test_sweep_isolates_crash;
        Alcotest.test_case "transient retry" `Quick
          test_sweep_retries_transient;
        Alcotest.test_case "deterministic across domains" `Quick
          test_faulted_sweep_deterministic_across_domains;
      ] );
    ( "fault.properties",
      [ prop prop_conservation_under_faults; prop prop_empty_plan_same_cost ]
    );
  ]
