(* Shared helpers for the suites: random instance generators (as QCheck2
   generators over seeds/parameters) and policy spying. *)

module Instance = Rrs_sim.Instance
module Engine = Rrs_sim.Engine
module Ledger = Rrs_sim.Ledger
module Schedule = Rrs_sim.Schedule

(* Small rate-limited, power-of-two-bound instances (the Section 3 input
   class). *)
let gen_rate_limited : Instance.t QCheck2.Gen.t =
  QCheck2.Gen.(
    let* seed = int_bound 10_000 in
    let* colors = int_range 2 10 in
    let* delta = int_range 1 6 in
    let* load = float_range 0.1 1.2 in
    let* horizon = int_range 16 96 in
    return
      (Rrs_workload.Random_workloads.uniform ~seed ~colors ~delta
         ~bound_log_range:(0, 4) ~horizon ~load ~rate_limited:true ()))

(* Batched (not necessarily rate-limited) instances for Distribute. *)
let gen_batched : Instance.t QCheck2.Gen.t =
  QCheck2.Gen.(
    let* seed = int_bound 10_000 in
    let* colors = int_range 2 8 in
    let* delta = int_range 1 6 in
    let* load = float_range 0.5 4.0 in
    let* horizon = int_range 16 64 in
    return
      (Rrs_workload.Random_workloads.uniform ~seed ~colors ~delta
         ~bound_log_range:(0, 4) ~horizon ~load ~rate_limited:false ()))

(* Fully general instances (arbitrary bounds, unbatched arrivals). *)
let gen_unbatched : Instance.t QCheck2.Gen.t =
  QCheck2.Gen.(
    let* seed = int_bound 10_000 in
    let* colors = int_range 2 8 in
    let* delta = int_range 1 6 in
    let* load = float_range 0.1 1.0 in
    let* horizon = int_range 16 64 in
    let* lo = int_range 1 6 in
    let* hi = int_range lo 24 in
    return
      (Rrs_workload.Random_workloads.unbatched ~seed ~colors ~delta
         ~bound_range:(lo, hi) ~horizon ~load ()))

(* Tiny instances where brute force is affordable. *)
let gen_tiny : Instance.t QCheck2.Gen.t =
  QCheck2.Gen.(
    let* seed = int_bound 10_000 in
    let* colors = int_range 1 3 in
    let* delta = int_range 1 3 in
    let* load = float_range 0.2 1.5 in
    let* horizon = int_range 4 10 in
    return
      (Rrs_workload.Random_workloads.uniform ~seed ~colors ~delta
         ~bound_log_range:(0, 2) ~horizon ~load ~rate_limited:true ()))

(* Run a policy and return (ledger, stats, validated schedule). Fails the
   test on validation errors. *)
let run_validated ?speed ~n ~policy instance =
  let result = Engine.run ?speed ~record_events:true ~n ~policy instance in
  let speed = match speed with Some s -> s | None -> 1 in
  let schedule = Schedule.of_run ~instance ~n ~speed result.ledger in
  (match Schedule.validate schedule with
  | Ok () -> ()
  | Error errors ->
      Alcotest.failf "invalid schedule for %s: %s" instance.Instance.name
        (String.concat "; "
           (List.filteri (fun i _ -> i < 3) errors)));
  (result, schedule)

(* Wrap a policy to observe the targets it produces each mini-round. *)
module Spy (P : Rrs_sim.Policy.POLICY) = struct
  type t = {
    inner : P.t;
    mutable max_distinct : int;
    mutable replication_violations : int; (* colors not in exactly [copies] locations *)
    mutable observations : int;
    copies : int ref;
  }

  let expected_copies = ref 2
  let name = P.name ^ "+spy"

  let create ~n ~delta ~bounds =
    {
      inner = P.create ~n ~delta ~bounds;
      max_distinct = 0;
      replication_violations = 0;
      observations = 0;
      copies = expected_copies;
    }

  let on_drop t ~round ~dropped = P.on_drop t.inner ~round ~dropped
  let on_arrival t ~round ~request = P.on_arrival t.inner ~round ~request

  let reconfigure t view =
    let target = P.reconfigure t.inner view in
    let counts = Hashtbl.create 16 in
    Array.iter
      (function
        | Some c ->
            Hashtbl.replace counts c
              (1 + try Hashtbl.find counts c with Not_found -> 0)
        | None -> ())
      target;
    t.max_distinct <- max t.max_distinct (Hashtbl.length counts);
    Hashtbl.iter
      (fun _ k ->
        if k <> !(t.copies) then
          t.replication_violations <- t.replication_violations + 1)
      counts;
    t.observations <- t.observations + 1;
    target

  let stats t =
    ("spy_max_distinct", t.max_distinct)
    :: ("spy_replication_violations", t.replication_violations)
    :: ("spy_observations", t.observations)
    :: P.stats t.inner

  (* The spy's own counters are observational; only the inner state
     travels. *)
  let serialize t = P.serialize t.inner
  let deserialize t blob = P.deserialize t.inner blob
end

let stat stats key =
  match List.assoc_opt key stats with
  | Some v -> v
  | None -> Alcotest.failf "missing stat %s" key
