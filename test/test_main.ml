let () =
  Alcotest.run "rrs"
    (Test_ds.suite @ Test_sim.suite @ Test_policies.suite @ Test_reductions.suite @ Test_offline.suite @ Test_lemmas.suite @ Test_workload.suite @ Test_analysis.suite @ Test_integration.suite @ Test_constructions.suite @ Test_ablation.suite @ Test_static.suite @ Test_instance_ops.suite @ Test_weighted.suite @ Test_stress.suite @ Test_edge_cases.suite @ Test_metrics.suite @ Test_sweep.suite @ Test_obs.suite @ Test_fault.suite @ Test_server.suite @ Test_failover.suite @ Test_poll.suite @ Test_wire_stream.suite @ Test_net.suite)
