(* Connection-core regression tests for the poll-based serving layer:
   socket-steal refusal (a second server must not silently unlink a
   live server's Unix socket), fd hygiene in the accept->worker handoff
   (a raising handler never leaks the popped fd; a rejected push never
   signals), close-on-exec across [Shard]'s create_process children
   (an inherited socket would keep dead clients from ever seeing EOF),
   and the FD_SETSIZE-cliff churn test: >= 1024 concurrent connections
   with open/close churn, zero frame errors, and a flat fd table. *)

module Net = Rrs_server.Net
module Poll = Rrs_server.Poll
module Server = Rrs_server.Server
module Client = Rrs_server.Client
module Wire = Rrs_server.Wire
module Shard = Rrs_server.Shard

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let temp_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

(* ---- Unix socket path stealing ---- *)

let test_live_socket_path_refused () =
  let dir = temp_dir "rrs_steal" in
  let path = Filename.concat dir "sock" in
  let fd, cleanup = Net.listen_socket (Net.Unix_socket path) in
  Alcotest.(check (option string)) "cleanup path" (Some path) cleanup;
  (* The path is live: a second bind must refuse, naming the conflict,
     and must leave the first listener's socket file in place. *)
  (match Net.listen_socket (Net.Unix_socket path) with
  | fd2, _ ->
      Unix.close fd2;
      Alcotest.fail "second listener stole a live socket path"
  | exception Failure message ->
      check_bool
        (Printf.sprintf "error names the conflict (%s)" message)
        true
        (let marker = "address in use by a live server" in
         let rec find i =
           if i + String.length marker > String.length message then false
           else
             String.sub message i (String.length marker) = marker
             || find (i + 1)
         in
         find 0));
  check_bool "socket file survived the refusal" true (Sys.file_exists path);
  (* Close without unlinking: the file is now stale (connects get
     ECONNREFUSED), and the next listener must clean and reuse it. *)
  Unix.close fd;
  check_bool "stale file left behind" true (Sys.file_exists path);
  let fd3, _ = Net.listen_socket (Net.Unix_socket path) in
  let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect probe (Unix.ADDR_UNIX path);
  Unix.close probe;
  Unix.close fd3;
  Sys.remove path

let test_second_server_refused () =
  let dir = temp_dir "rrs_steal2" in
  let address = Server.Unix_socket (Filename.concat dir "sock") in
  let config = { (Server.default_config address) with Server.domains = 2 } in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop ~drain:false server))
    (fun () ->
      (match Server.start config with
      | server2 ->
          ignore (Server.stop ~drain:false server2);
          Alcotest.fail "second server started on a live socket path"
      | exception Failure _ -> ());
      (* The first server must be completely unaffected by the refusal:
         its socket file is intact and it still answers. *)
      let client = Client.connect address in
      (match Client.call ~deadline_ms:5_000 client (Wire.Hello { client_version = Wire.version }) with
      | Ok (Wire.Hello_ok _) -> ()
      | Ok frame -> Alcotest.failf "unexpected reply: %s" (Wire.encode frame)
      | Error message -> Alcotest.failf "first server broken: %s" message);
      Client.close client)

(* ---- handoff queue and worker fd hygiene ---- *)

let test_handoff_push_closed_queues_nothing () =
  let q = Net.handoff_create 4 in
  Net.handoff_close q;
  let r, w = Unix.pipe () in
  check_bool "push on a closed queue is rejected" false (Net.handoff_push q r);
  (* Nothing was queued: a pop on the closed queue drains to None
     immediately instead of handing out the rejected fd. *)
  (match Net.handoff_pop q with
  | None -> ()
  | Some _ -> Alcotest.fail "rejected push left an fd in the queue");
  Unix.close r;
  Unix.close w

let test_worker_loop_closes_fd_when_serve_raises () =
  let q = Net.handoff_create 4 in
  let conns = Net.conn_table () in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  check_bool "push accepted" true (Net.handoff_push q a);
  Net.handoff_close q;
  (* The handler raises before ever closing its fd; the worker must
     close it anyway — otherwise every crashed connection leaks one
     descriptor until the process hits EMFILE. *)
  Net.worker_loop ~handoff:q ~conns ~worker:0
    ~serve:(fun ~worker:_ _fd -> failwith "handler bug before close");
  (match Unix.fstat a with
  | _ -> Alcotest.fail "raising handler leaked the connection fd"
  | exception Unix.Unix_error (Unix.EBADF, _, _) -> ());
  (* And the peer observes the close as EOF, not a hang. *)
  (match Poll.wait_readable ~timeout:5.0 b with
  | `Readable -> check "peer sees EOF" 0 (Unix.read b (Bytes.create 8) 0 8)
  | `Timeout -> Alcotest.fail "peer never saw the close");
  Unix.close b

(* ---- close-on-exec across Shard children ---- *)

let proc_socket_fds pid =
  let dir = Printf.sprintf "/proc/%d/fd" pid in
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun entry ->
             match Unix.readlink (Filename.concat dir entry) with
             | target
               when String.length target >= 7
                    && String.sub target 0 7 = "socket:" ->
                 Some (entry ^ " -> " ^ target)
             | _ -> None
             | exception Unix.Unix_error _ -> None)
  | exception Sys_error _ -> []

let test_shard_children_inherit_no_sockets () =
  if not (Sys.file_exists "/proc/self/fd") then ()
    (* no procfs: the cloexec flags are still set, but unobservable *)
  else begin
    let dir = temp_dir "rrs_cloexec" in
    let address = Server.Unix_socket (Filename.concat dir "sock") in
    let server =
      Server.start { (Server.default_config address) with Server.domains = 2 }
    in
    let client = Client.connect address in
    (* One round trip so the server side of the connection exists before
       the child forks: listener, accepted fd, event-loop pipe — all of
       it is live right now. *)
    (match Client.call ~deadline_ms:5_000 client (Wire.Hello { client_version = Wire.version }) with
    | Ok (Wire.Hello_ok _) -> ()
    | _ -> Alcotest.fail "hello failed");
    (* A supervised shard restart is a [Unix.create_process] in this
       very process image; the stand-in child just sleeps. *)
    let shard =
      Shard.start ~base_backoff_ms:50
        [ { Shard.sp_label = "noop"; sp_argv = [| "/bin/sh"; "-c"; "sleep 30" |] } ]
    in
    Fun.protect
      ~finally:(fun () -> Shard.stop ~grace_s:2. shard)
      (fun () ->
        let pid = List.assoc "noop" (Shard.pids shard) in
        check_bool "child spawned" true (pid > 0);
        (* Between fork and exec the child legitimately holds copies of
           every fd; close-on-exec strips them at exec. Wait for that. *)
        let deadline = Unix.gettimeofday () +. 5. in
        let rec settle () =
          match proc_socket_fds pid with
          | [] -> []
          | leaked when Unix.gettimeofday () >= deadline -> leaked
          | _ ->
              Unix.sleepf 0.02;
              settle ()
        in
        Alcotest.(check (list string))
          "child holds no inherited sockets" [] (settle ());
        (* The payoff: kill the serving process's connections while the
           child lives on. The client must see EOF immediately — an
           inherited fd in the sleeper would hold the connection open
           for another 30 seconds. *)
        ignore (Server.stop ~drain:false server);
        let t0 = Unix.gettimeofday () in
        (match Client.read_reply ~deadline_ms:3_000 client with
        | Error "connection closed by server" -> ()
        | Ok frame ->
            Alcotest.failf "stopped server answered: %s" (Wire.encode frame)
        | Error message -> Alcotest.failf "expected EOF, got: %s" message);
        check_bool "EOF was prompt, not a deadline expiry" true
          (Unix.gettimeofday () -. t0 < 1.5);
        Client.close client)
  end

(* ---- the FD_SETSIZE cliff: >= 1024 concurrent connections ---- *)

let fd_table_size () = Array.length (Sys.readdir "/proc/self/fd")

let test_churn_beyond_fd_setsize () =
  let conns_wanted = 1100 in
  (* Each connection costs two fds in this process (client end + server
     end), plus the listener, wake pipe, test runner fds... *)
  let limit = Poll.raise_fd_limit ((2 * conns_wanted) + 256) in
  if limit < (2 * conns_wanted) + 128 || not (Sys.file_exists "/proc/self/fd")
  then ()
    (* fd limit pinned low in this sandbox; the CI churn smoke covers it *)
  else begin
    let dir = temp_dir "rrs_churn" in
    let address = Server.Unix_socket (Filename.concat dir "sock") in
    let server =
      Server.start { (Server.default_config address) with Server.domains = 2 }
    in
    let call client frame =
      match Client.call ~deadline_ms:10_000 client frame with
      | Ok (Wire.Error_frame { message }) ->
          Alcotest.failf "frame error under churn: %s" message
      | Ok frame -> frame
      | Error message -> Alcotest.failf "transport error under churn: %s" message
    in
    let control = Client.connect address in
    (match
       call control
         (Wire.Open
            { session = "churn"; policy = "dlru"; delta = 2;
              bounds = [| 2; 3 |]; n = 3; speed = 1; horizon = 0;
              queue_limit = 0; decl = None })
     with
    | Wire.Opened _ -> ()
    | frame -> Alcotest.failf "open: %s" (Wire.encode frame));
    let stats client =
      match call client (Wire.Stats { session = "churn" }) with
      | Wire.Stats_ok _ -> ()
      | frame -> Alcotest.failf "stats: %s" (Wire.encode frame)
    in
    (* Ramp: every connection is held open — at full ramp the server
       multiplexes 1101 live sockets, far past FD_SETSIZE — and each
       must answer a frame while all the others stay connected. *)
    let conns = Array.init conns_wanted (fun _ -> Client.connect address) in
    Array.iter stats conns;
    let at_full = fd_table_size () in
    check_bool
      (Printf.sprintf "fd table proves concurrency (%d fds)" at_full)
      true
      (at_full >= 2 * conns_wanted);
    (* Churn: close and replace swaths of connections; after each round
       the fd table must return exactly to its full-ramp size — any
       drift is a leak (or a double accounting) in the event loop. *)
    let churn_per_round = 128 in
    for round = 0 to 2 do
      for i = 0 to churn_per_round - 1 do
        let j = ((round * churn_per_round) + i) mod conns_wanted in
        Client.close conns.(j);
        conns.(j) <- Client.connect address;
        stats conns.(j)
      done;
      (* The event loop closes its half asynchronously; give it a
         bounded moment to settle before pinning the count. *)
      let deadline = Unix.gettimeofday () +. 5. in
      let rec settle () =
        if fd_table_size () = at_full then ()
        else if Unix.gettimeofday () >= deadline then ()
        else begin
          Unix.sleepf 0.01;
          settle ()
        end
      in
      settle ();
      check
        (Printf.sprintf "fd table flat after churn round %d" round)
        at_full (fd_table_size ())
    done;
    Array.iter Client.close conns;
    Client.close control;
    ignore (Server.stop ~drain:false server)
  end

let suite =
  [
    ( "net.listen",
      [
        Alcotest.test_case "live socket path is refused, stale reused" `Quick
          test_live_socket_path_refused;
        Alcotest.test_case "second server cannot steal the socket" `Quick
          test_second_server_refused;
      ] );
    ( "net.handoff",
      [
        Alcotest.test_case "push on a closed queue queues nothing" `Quick
          test_handoff_push_closed_queues_nothing;
        Alcotest.test_case "raising handler never leaks the fd" `Quick
          test_worker_loop_closes_fd_when_serve_raises;
      ] );
    ( "net.cloexec",
      [
        Alcotest.test_case "shard children inherit no sockets" `Quick
          test_shard_children_inherit_no_sockets;
      ] );
    ( "net.churn",
      [
        Alcotest.test_case ">= 1024 concurrent connections with churn" `Slow
          test_churn_beyond_fd_setsize;
      ] );
  ]
