(* Observability-layer tests: probe registry semantics, event-sink JSONL
   round trips, report reconstruction (byte-identical summaries),
   phase profiling, Instrument.super_epochs edge cases and the Trace
   atomic-save / strict-parse paths. *)

module Probe = Rrs_obs.Probe
module Profile = Rrs_obs.Profile
module Clock = Rrs_obs.Clock
module Event_sink = Rrs_sim.Event_sink
module Engine = Rrs_sim.Engine
module Ledger = Rrs_sim.Ledger
module Sweep = Rrs_sim.Sweep
module Trace = Rrs_sim.Trace
module Instance = Rrs_sim.Instance
module Report = Rrs_stats.Report
module Instrument = Rrs_core.Instrument

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let small_instance ?(horizon = 128) ?(seed = 7) () =
  Rrs_workload.Random_workloads.uniform ~seed ~colors:6 ~delta:3
    ~bound_log_range:(0, 3) ~horizon ~load:0.9 ~rate_limited:true ()

let policy : (module Rrs_sim.Policy.POLICY) = (module Rrs_core.Policy_lru_edf)

(* ---- probes ---- *)

let test_probe_counter_gauge () =
  let registry = Probe.create_registry () in
  let c = Probe.counter registry "hits" in
  Probe.incr c;
  Probe.add c 4;
  check "counter" 5 (Probe.counter_value c);
  let g = Probe.gauge registry "depth" in
  Probe.set_gauge g 7;
  Probe.set_gauge g 3;
  check "gauge last" 3 (Probe.gauge_value g);
  check "gauge max" 7 (Probe.gauge_max g);
  (* Same name returns the same probe; a kind clash raises. *)
  let c' = Probe.counter registry "hits" in
  Probe.incr c';
  check "shared counter" 6 (Probe.counter_value c);
  (match Probe.gauge registry "hits" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash must raise");
  check "snapshot"
    (List.assoc "hits" (Probe.snapshot registry))
    6

let test_probe_disabled_costs_nothing () =
  let registry = Probe.create_registry ~enabled:false () in
  let c = Probe.counter registry "hits" in
  let g = Probe.gauge registry "depth" in
  let h = Probe.histogram registry "lat" in
  Probe.incr c;
  Probe.set_gauge g 9;
  Probe.observe h 5;
  check "counter untouched" 0 (Probe.counter_value c);
  check "gauge untouched" 0 (Probe.gauge_max g);
  check "hist untouched" 0 (Probe.snapshot_histogram h).Probe.count;
  Probe.set_enabled registry true;
  Probe.incr c;
  check "re-enabled" 1 (Probe.counter_value c)

let test_probe_histogram_percentiles () =
  let registry = Probe.create_registry () in
  let h = Probe.histogram registry ~buckets:[| 1; 2; 4; 8 |] "lat" in
  (* 1x1, 1x2, 1x3, 97x4 -> p50/p99 in the 4-bucket, max tracked. *)
  Probe.observe h 1;
  Probe.observe h 2;
  Probe.observe h 3;
  Probe.observe_n h 4 ~n:97;
  let snap = Probe.snapshot_histogram h in
  check "count" 100 snap.Probe.count;
  check "sum" (1 + 2 + 3 + (4 * 97)) snap.Probe.sum;
  check "min" 1 snap.Probe.min_value;
  check "max" 4 snap.Probe.max_value;
  check "p01" 1 (Probe.percentile snap 0.01);
  check "p02" 2 (Probe.percentile snap 0.02);
  check "p03 bucket" 4 (Probe.percentile snap 0.03);
  check "p50" 4 (Probe.percentile snap 0.50);
  check "p100" 4 (Probe.percentile snap 1.0);
  (* Overflow samples report the observed max, not a bucket bound. *)
  Probe.observe h 1000;
  let snap = Probe.snapshot_histogram h in
  check "overflow count" 1 snap.Probe.overflow;
  check "p100 overflow" 1000 (Probe.percentile snap 1.0);
  (match Probe.histogram registry ~buckets:[| 3; 3 |] "bad" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-increasing buckets must raise")

let test_probe_percentile_edges () =
  let registry = Probe.create_registry () in
  (* Empty histogram: every percentile is 0. *)
  let empty = Probe.histogram registry ~buckets:[| 2; 8 |] "empty" in
  let snap = Probe.snapshot_histogram empty in
  List.iter
    (fun p -> check (Printf.sprintf "empty p%g" p) 0 (Probe.percentile snap p))
    [ 0.0; 0.5; 0.999; 1.0 ];
  (* Every sample above the last bound: no bucket bound applies, so all
     percentiles report the observed max. *)
  let over = Probe.histogram registry ~buckets:[| 2; 8 |] "over" in
  Probe.observe over 100;
  Probe.observe over 900;
  let snap = Probe.snapshot_histogram over in
  check "all-overflow count" 2 snap.Probe.overflow;
  List.iter
    (fun p ->
      check (Printf.sprintf "overflow p%g" p) 900 (Probe.percentile snap p))
    [ 0.01; 0.5; 0.999; 1.0 ];
  (* One wide bucket: the bound never leaks, results clamp to the max. *)
  let one = Probe.histogram registry ~buckets:[| 1000 |] "one" in
  Probe.observe one 7;
  let snap = Probe.snapshot_histogram one in
  check "single bucket p50 clamps to max" 7 (Probe.percentile snap 0.5);
  check "single bucket p999 clamps to max" 7 (Probe.percentile snap 0.999)

let test_probe_snapshot_extended_percentiles () =
  let registry = Probe.create_registry () in
  let h = Probe.histogram registry ~buckets:[| 1; 2; 4; 8; 16 |] "lat" in
  (* 988 at 1, 10 at 8, 2 at 16: cumulative 988 / 998 / 1000, so p50 and
     p90 sit in the first bucket, p99 at 8 and p999 at 16. *)
  Probe.observe_n h 1 ~n:988;
  Probe.observe_n h 8 ~n:10;
  Probe.observe_n h 16 ~n:2;
  let snapshot = Probe.snapshot registry in
  let stat key = List.assoc key snapshot in
  check "count key" 1000 (stat "lat_count");
  check "p50 key" 1 (stat "lat_p50");
  check "p90 key" 1 (stat "lat_p90");
  check "p99 key" 8 (stat "lat_p99");
  check "p999 key" 16 (stat "lat_p999");
  check "max key" 16 (stat "lat_max")

let test_probe_merge () =
  let a = Probe.create_registry () in
  let b = Probe.create_registry () in
  Probe.add (Probe.counter a "jobs") 5;
  Probe.add (Probe.counter b "jobs") 7;
  Probe.incr (Probe.counter b "only_b");
  Probe.set_gauge (Probe.gauge a "depth") 9;
  Probe.set_gauge (Probe.gauge a "depth") 2;
  Probe.set_gauge (Probe.gauge b "depth") 4;
  let ha = Probe.histogram a ~buckets:[| 2; 8 |] "lat" in
  let hb = Probe.histogram b ~buckets:[| 2; 8 |] "lat" in
  Probe.observe ha 1;
  Probe.observe ha 100;
  Probe.observe hb 5;
  Probe.observe hb 2;
  let merged = Probe.merged [ a; b ] in
  check "counters add" 12 (Probe.counter_value (Probe.counter merged "jobs"));
  check "missing names register" 1
    (Probe.counter_value (Probe.counter merged "only_b"));
  check "gauge maxima combine" 9 (Probe.gauge_max (Probe.gauge merged "depth"));
  check "gauge values add" 6 (Probe.gauge_value (Probe.gauge merged "depth"));
  let snap =
    Probe.snapshot_histogram (Probe.histogram merged ~buckets:[| 2; 8 |] "lat")
  in
  check "hist count" 4 snap.Probe.count;
  check "hist sum" 108 snap.Probe.sum;
  check "hist min" 1 snap.Probe.min_value;
  check "hist max" 100 snap.Probe.max_value;
  check "hist overflow" 1 snap.Probe.overflow;
  check_bool "buckets add" true (snap.Probe.buckets = [| (2, 2); (8, 1) |]);
  (* Merging never mutates the source workers' registries. *)
  check "source untouched" 2 (Probe.snapshot_histogram ha).Probe.count;
  (* Same histogram name under different bounds refuses to fold. *)
  let c = Probe.create_registry () in
  ignore (Probe.histogram c ~buckets:[| 1; 2 |] "lat");
  match Probe.merge ~into:c a with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "mismatched bucket bounds must raise"

(* The cross-domain aggregation contract: a sample stream split across k
   per-worker registries and then merged is indistinguishable from one
   registry that saw every sample — counters, gauge maxima and every
   histogram bucket. *)
let prop_merge_equals_single =
  QCheck2.Test.make
    ~name:"probe: merged shards = one registry over all samples" ~count:200
    QCheck2.Gen.(pair (int_range 1 5) (small_list (int_bound 5000)))
    (fun (k, samples) ->
      let buckets = [| 1; 4; 16; 64; 256; 1024 |] in
      let shards = Array.init k (fun _ -> Probe.create_registry ()) in
      let whole = Probe.create_registry () in
      List.iteri
        (fun i sample ->
          let record registry =
            Probe.add (Probe.counter registry "total") sample;
            Probe.incr (Probe.counter registry "samples");
            Probe.set_gauge (Probe.gauge registry "last") sample;
            Probe.observe (Probe.histogram registry ~buckets "lat") sample
          in
          record shards.(i mod k);
          record whole)
        samples;
      let merged = Probe.merged (Array.to_list shards) in
      let hist registry =
        Probe.snapshot_histogram (Probe.histogram registry ~buckets "lat")
      in
      let m = hist merged and w = hist whole in
      Probe.counter_value (Probe.counter merged "total")
      = Probe.counter_value (Probe.counter whole "total")
      && Probe.counter_value (Probe.counter merged "samples")
         = List.length samples
      && Probe.gauge_max (Probe.gauge merged "last")
         = Probe.gauge_max (Probe.gauge whole "last")
      && m.Probe.count = w.Probe.count
      && m.Probe.sum = w.Probe.sum
      && m.Probe.min_value = w.Probe.min_value
      && m.Probe.max_value = w.Probe.max_value
      && m.Probe.overflow = w.Probe.overflow
      && m.Probe.buckets = w.Probe.buckets)

(* ---- event sink ---- *)

let sample_events =
  [
    Event_sink.Reconfig
      { round = 0; mini_round = 0; location = 1; previous = None; next = 2 };
    Event_sink.Reconfig
      { round = 1; mini_round = 0; location = 1; previous = Some 2; next = 0 };
    Event_sink.Drop { round = 2; color = 3; count = 4 };
    Event_sink.Execute
      { round = 2; mini_round = 0; location = 1; color = 0; deadline = 5 };
  ]

let test_memory_sink_round_trip () =
  let sink = Event_sink.memory () in
  List.iter (Event_sink.record sink) sample_events;
  check_bool "chronological" true (Event_sink.events sink = sample_events);
  check "null sink keeps nothing" 0
    (List.length
       (let sink = Event_sink.Null in
        List.iter (Event_sink.record sink) sample_events;
        Event_sink.events sink))

let test_jsonl_event_round_trip () =
  List.iter
    (fun event ->
      let path = Filename.temp_file "rrs_sink" ".jsonl" in
      let channel = open_out path in
      let sink = Event_sink.Jsonl channel in
      Event_sink.record sink event;
      close_out channel;
      let line = In_channel.with_open_text path In_channel.input_all in
      Sys.remove path;
      let line = String.trim line in
      match Event_sink.parse_line line with
      | Ok (Event_sink.Event parsed) ->
          check_bool ("round trip " ^ line) true (parsed = event)
      | Ok _ -> Alcotest.failf "expected an event line for %s" line
      | Error message -> Alcotest.failf "parse %s: %s" line message)
    sample_events

let test_jsonl_parse_errors () =
  let expect_error text =
    match Event_sink.parse_line text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected a parse error for %s" text
  in
  expect_error "";
  expect_error "not json";
  expect_error "{\"schema\":\"rrs-events/999\"}";
  expect_error "{\"type\":\"warp\",\"round\":1}";
  expect_error "{\"type\":\"drop\",\"round\":1,\"color\":2}" (* missing count *);
  expect_error "{\"type\":\"drop\",\"round\":1,\"color\":2,\"count\":\"x\"}";
  expect_error "{\"type\":\"drop\",\"round\":1,\"color\":2,\"count\":3} trailing"

(* ---- engine streaming + report ---- *)

let run_traced ?(horizon = 200) () =
  let instance = small_instance ~horizon () in
  let path = Filename.temp_file "rrs_events" ".jsonl" in
  let channel = open_out path in
  let result =
    Fun.protect
      ~finally:(fun () -> close_out channel)
      (fun () ->
        Engine.run ~sink:(Event_sink.Jsonl channel) ~n:4 ~policy instance)
  in
  (instance, path, result)

let test_report_matches_live_run () =
  let instance, path, result = run_traced () in
  let live = Format.asprintf "%a" Ledger.pp_summary result.Engine.ledger in
  (match Report.of_path path with
  | Error message -> Alcotest.failf "report: %s" message
  | Ok report ->
      check_string "byte-identical summary" live (Report.summary_string report);
      check "cost" (Ledger.total_cost result.Engine.ledger)
        (Report.total_cost report);
      check "reconfigs"
        (Ledger.reconfig_count result.Engine.ledger)
        report.Report.reconfig_count;
      check "drops"
        (Ledger.drop_count result.Engine.ledger)
        report.Report.drop_count;
      check "execs"
        (Ledger.exec_count result.Engine.ledger)
        report.Report.exec_count;
      check "every round snapshotted" instance.Instance.horizon
        report.Report.rounds_seen;
      check "exec slack samples"
        (Ledger.exec_count result.Engine.ledger)
        report.Report.exec_slack.Probe.count;
      check "drop latency samples"
        (Ledger.drop_count result.Engine.ledger)
        report.Report.drop_latency.Probe.count);
  Sys.remove path

let test_report_detects_truncation () =
  let _instance, path, _result = run_traced () in
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  let rewrite selected =
    Out_channel.with_open_text path (fun out ->
        List.iter (fun l -> Out_channel.output_string out (l ^ "\n")) selected)
  in
  (* A file cut off before the closing summary is an error... *)
  let without_summary =
    List.filteri (fun i _ -> i < List.length lines - 1) lines
  in
  rewrite without_summary;
  (match Report.of_path path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing summary must be an error");
  (* ...and so is a complete-looking file with one event line missing:
     the folded counters no longer match the summary. *)
  let is_event line =
    match Event_sink.parse_line line with
    | Ok (Event_sink.Event _) -> true
    | _ -> false
  in
  let dropped = ref false in
  let with_hole =
    List.filter
      (fun line ->
        if (not !dropped) && is_event line then begin
          dropped := true;
          false
        end
        else true)
      lines
  in
  check_bool "run produced at least one event" true !dropped;
  rewrite with_hole;
  (match Report.of_path path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dropped event line must fail the summary cross-check");
  Sys.remove path

let test_report_requires_header () =
  let path = Filename.temp_file "rrs_events" ".jsonl" in
  Out_channel.with_open_text path (fun out ->
      Out_channel.output_string out
        "{\"type\":\"drop\",\"round\":1,\"color\":0,\"count\":1}\n");
  (match Report.of_path path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing header must be an error");
  Sys.remove path

let test_engine_probe_stats () =
  let instance = small_instance () in
  let registry = Probe.create_registry () in
  let result =
    Engine.run ~record_events:false ~probes:registry ~n:4 ~policy instance
  in
  let stat key = Test_helpers.stat result.Engine.stats key in
  check "exec_slack_count = executions"
    (Ledger.exec_count result.Engine.ledger)
    (stat "exec_slack_count");
  check "drop_latency_count = drops"
    (Ledger.drop_count result.Engine.ledger)
    (stat "drop_latency_count");
  check "round_reconfigs_sum = reconfigs"
    (Ledger.reconfig_count result.Engine.ledger)
    (stat "round_reconfigs_sum");
  check "one churn sample per round" instance.Instance.horizon
    (stat "round_reconfigs_count");
  (* Policy stats survive alongside the probe namespace. *)
  check_bool "policy stats present" true
    (List.mem_assoc "epochs" result.Engine.stats)

let test_engine_profile () =
  let instance = small_instance () in
  let result =
    Engine.run ~record_events:false ~profile:true ~n:4 ~policy instance
  in
  match result.Engine.profile with
  | None -> Alcotest.fail "profile requested but absent"
  | Some profile ->
      check "four phases" 4 (Profile.phase_count profile);
      Alcotest.(check (list string))
        "phase names" Engine.phase_names
        (List.map (fun (name, _, _) -> name) (Profile.fields profile));
      List.iteri
        (fun index _ ->
          check
            (Printf.sprintf "phase %d sampled once per round" index)
            instance.Instance.horizon (Profile.samples profile index))
        Engine.phase_names;
      check_bool "wall clocks nonnegative" true
        (List.for_all (fun (_, wall, _) -> wall >= 0.0) (Profile.fields profile))

let test_profile_off_by_default () =
  let instance = small_instance ~horizon:16 () in
  let result = Engine.run ~record_events:false ~n:4 ~policy instance in
  check_bool "no profile" true (result.Engine.profile = None)

(* ---- sweep profiling + monotonic clock ---- *)

let test_sweep_run_profiled () =
  let tasks =
    List.map
      (fun seed ->
        Sweep.task
          ~key:(Printf.sprintf "seed=%d" seed)
          ~policy ~n:4
          (small_instance ~seed ()))
      [ 1; 2; 3; 4; 5 ]
  in
  let plain = Sweep.run ~domains:2 tasks in
  let profiled = Sweep.run_profiled ~domains:2 tasks in
  check "outcome count" 5 (List.length profiled.Sweep.outcomes);
  check "domains" 2 profiled.Sweep.domains;
  check "loads cover all tasks" 5
    (List.fold_left (fun acc (l : Sweep.domain_load) -> acc + l.tasks) 0
       profiled.Sweep.loads);
  check_bool "busy fits in wall" true
    (List.for_all
       (fun (l : Sweep.domain_load) ->
         l.busy_s >= 0.0 && l.busy_s <= profiled.Sweep.wall_s +. 1.0)
       profiled.Sweep.loads);
  check_bool "deterministic outcomes" true
    (List.for_all2
       (fun (a : Sweep.outcome) (b : Sweep.outcome) ->
         a.key = b.key && a.cost = b.cost)
       plain profiled.Sweep.outcomes)

let test_clock_monotonic () =
  let t0 = Clock.now_s () in
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  check_bool "ns nondecreasing" true (Int64.compare b a >= 0);
  check_bool "elapsed nonnegative" true (Clock.elapsed_s t0 >= 0.0);
  check_bool "elapsed clamps future marks" true
    (Clock.elapsed_s (Clock.now_s () +. 1e6) = 0.0)

(* ---- Instrument.super_epochs edge cases ---- *)

let test_super_epochs_watermark_one () =
  (* Every first-in-window distinct color closes a super-epoch at once;
     duplicates of the closing color open (and close) fresh windows. *)
  check "three updates, watermark 1" 3
    (Instrument.super_epochs ~watermark:1 [ (0, 1); (1, 1); (2, 2) ]);
  check "empty events" 0 (Instrument.super_epochs ~watermark:1 [])

let test_super_epochs_trailing_partial () =
  (* Colors 1,2 complete a super-epoch at watermark 2; color 3 alone is a
     trailing partial that still counts. *)
  check "complete + partial" 2
    (Instrument.super_epochs ~watermark:2 [ (0, 1); (1, 2); (2, 3) ]);
  (* Without the trailing update there is exactly the complete one. *)
  check "complete only" 1
    (Instrument.super_epochs ~watermark:2 [ (0, 1); (1, 2) ])

let test_super_epochs_duplicate_updates () =
  (* Repeated updates of one color within a super-epoch do not advance
     the distinct-color watermark. *)
  check "duplicates don't close" 1
    (Instrument.super_epochs ~watermark:2 [ (0, 1); (1, 1); (2, 1) ]);
  (* ...but a second distinct color still does, whatever the repetition. *)
  check "duplicates then close" 1
    (Instrument.super_epochs ~watermark:2 [ (0, 1); (1, 1); (2, 2) ]);
  match Instrument.super_epochs ~watermark:0 [ (0, 1) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "watermark < 1 must raise"

(* ---- trace: atomic save + strict parsing ---- *)

let trace_instance () =
  Instance.make ~name:"t" ~delta:2 ~bounds:[| 2; 4 |]
    ~arrivals:[ (0, [ (0, 1) ]); (3, [ (1, 2) ]) ]
    ()

let test_trace_round_trip () =
  let instance = trace_instance () in
  match Trace.of_string (Trace.to_string instance) with
  | Error message -> Alcotest.failf "round trip: %s" message
  | Ok parsed ->
      check_string "name" instance.Instance.name parsed.Instance.name;
      check "delta" instance.Instance.delta parsed.Instance.delta;
      check_bool "bounds" true (instance.Instance.bounds = parsed.Instance.bounds);
      check_bool "requests" true
        (instance.Instance.requests = parsed.Instance.requests)

let test_trace_save_atomic () =
  let dir = Filename.temp_file "rrs_trace" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "x.trace" in
  let instance = trace_instance () in
  Trace.save instance ~path;
  (match Trace.load ~path with
  | Ok parsed -> check "atomic save loads" instance.Instance.delta
                   parsed.Instance.delta
  | Error message -> Alcotest.failf "load: %s" message);
  (* No temp residue in the directory. *)
  check "only the trace remains" 1 (Array.length (Sys.readdir dir));
  Sys.remove path;
  Sys.rmdir dir

let test_trace_parse_errors () =
  let expect_error ~needle text =
    match Trace.of_string text with
    | Ok _ -> Alcotest.failf "expected parse error (%s)" needle
    | Error message ->
        let contains =
          let nl = String.length needle and hl = String.length message in
          let rec go i =
            i + nl <= hl && (String.sub message i nl = needle || go (i + 1))
          in
          go 0
        in
        check_bool (Printf.sprintf "%S in %S" needle message) true contains
  in
  expect_error ~needle:"duplicate delta"
    "rrs-trace v1\ndelta 2\ndelta 3\nbounds 2\nend\n";
  expect_error ~needle:"duplicate bounds"
    "rrs-trace v1\ndelta 2\nbounds 2\nbounds 4\nend\n";
  expect_error ~needle:"after end"
    "rrs-trace v1\ndelta 2\nbounds 2\nend\narrival 0 0:1\n";
  expect_error ~needle:"missing delta" "rrs-trace v1\nbounds 2\nend\n";
  (* Comments and blank lines after end stay legal. *)
  match Trace.of_string "rrs-trace v1\ndelta 2\nbounds 2\nend\n# c\n\n" with
  | Ok _ -> ()
  | Error message -> Alcotest.failf "comment after end: %s" message

let suite =
  [
    ( "obs.probe",
      [
        Alcotest.test_case "counter and gauge" `Quick test_probe_counter_gauge;
        Alcotest.test_case "disabled registry" `Quick
          test_probe_disabled_costs_nothing;
        Alcotest.test_case "histogram percentiles" `Quick
          test_probe_histogram_percentiles;
        Alcotest.test_case "percentile edge cases" `Quick
          test_probe_percentile_edges;
        Alcotest.test_case "snapshot p90/p999" `Quick
          test_probe_snapshot_extended_percentiles;
        Alcotest.test_case "cross-registry merge" `Quick test_probe_merge;
        QCheck_alcotest.to_alcotest prop_merge_equals_single;
      ] );
    ( "obs.sink",
      [
        Alcotest.test_case "memory round trip" `Quick
          test_memory_sink_round_trip;
        Alcotest.test_case "jsonl round trip" `Quick test_jsonl_event_round_trip;
        Alcotest.test_case "jsonl parse errors" `Quick test_jsonl_parse_errors;
      ] );
    ( "obs.report",
      [
        Alcotest.test_case "matches live run" `Quick test_report_matches_live_run;
        Alcotest.test_case "detects truncation" `Quick
          test_report_detects_truncation;
        Alcotest.test_case "requires header" `Quick test_report_requires_header;
      ] );
    ( "obs.engine",
      [
        Alcotest.test_case "probe stats" `Quick test_engine_probe_stats;
        Alcotest.test_case "phase profile" `Quick test_engine_profile;
        Alcotest.test_case "profile off by default" `Quick
          test_profile_off_by_default;
      ] );
    ( "obs.sweep",
      [
        Alcotest.test_case "run_profiled" `Quick test_sweep_run_profiled;
        Alcotest.test_case "monotonic clock" `Quick test_clock_monotonic;
      ] );
    ( "obs.instrument",
      [
        Alcotest.test_case "watermark = 1" `Quick test_super_epochs_watermark_one;
        Alcotest.test_case "trailing partial" `Quick
          test_super_epochs_trailing_partial;
        Alcotest.test_case "duplicate updates" `Quick
          test_super_epochs_duplicate_updates;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "round trip" `Quick test_trace_round_trip;
        Alcotest.test_case "atomic save" `Quick test_trace_save_atomic;
        Alcotest.test_case "parse errors" `Quick test_trace_parse_errors;
      ] );
  ]
