(* Core-algorithm tests: per-color state machine, rankings, cache layout,
   the three policies' invariants and behavior on directed scenarios. *)

module Types = Rrs_sim.Types
module Instance = Rrs_sim.Instance
module Engine = Rrs_sim.Engine
module Ledger = Rrs_sim.Ledger
module Job_pool = Rrs_sim.Job_pool
module Color_state = Rrs_core.Color_state
module Cache_layout = Rrs_core.Cache_layout
module Ranking = Rrs_core.Ranking
module H = Test_helpers

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Color_state: counters, eligibility, wraps, timestamps ---- *)

let always_uncached _ = false

let test_eligibility_via_wrap () =
  let s = Color_state.create ~delta:3 ~bounds:[| 4 |] () in
  Color_state.on_arrival s ~round:0 ~request:[ (0, 2) ];
  check_bool "2 < delta jobs: ineligible" false (Color_state.eligible s 0);
  Color_state.on_drop s ~round:4 ~dropped:[] ~in_cache:always_uncached;
  Color_state.on_arrival s ~round:4 ~request:[ (0, 2) ];
  (* cnt = 4 >= 3: wrap, becomes eligible, cnt = 1. *)
  check_bool "wrap makes eligible" true (Color_state.eligible s 0);
  check "deadline refreshed" 8 (Color_state.deadline s 0)

let test_eligibility_reset_when_uncached () =
  let s = Color_state.create ~delta:2 ~bounds:[| 4 |] () in
  Color_state.on_arrival s ~round:0 ~request:[ (0, 2) ];
  check_bool "eligible" true (Color_state.eligible s 0);
  (* Boundary at round 4, not cached: becomes ineligible (epoch ends). *)
  Color_state.on_drop s ~round:4 ~dropped:[] ~in_cache:always_uncached;
  check_bool "reset" false (Color_state.eligible s 0);
  check "one epoch ended" 1 (H.stat (Color_state.stats s) "epochs")

let test_eligibility_kept_when_cached () =
  let s = Color_state.create ~delta:2 ~bounds:[| 4 |] () in
  Color_state.on_arrival s ~round:0 ~request:[ (0, 2) ];
  Color_state.on_drop s ~round:4 ~dropped:[] ~in_cache:(fun _ -> true);
  check_bool "still eligible" true (Color_state.eligible s 0)

let test_non_boundary_rounds_do_nothing () =
  let s = Color_state.create ~delta:2 ~bounds:[| 4 |] () in
  Color_state.on_arrival s ~round:0 ~request:[ (0, 2) ];
  (* Rounds 1-3 are not boundaries of a bound-4 color. *)
  Color_state.on_drop s ~round:1 ~dropped:[] ~in_cache:always_uncached;
  Color_state.on_drop s ~round:3 ~dropped:[] ~in_cache:always_uncached;
  check_bool "no reset off-boundary" true (Color_state.eligible s 0);
  check "deadline unchanged" 4 (Color_state.deadline s 0)

let test_timestamp_definition () =
  let s = Color_state.create ~delta:2 ~bounds:[| 4 |] () in
  (* Wrap at round 0: timestamp stays 0 while the current boundary is 0,
     and becomes 0 (the wrap round) only after the next boundary. *)
  Color_state.on_arrival s ~round:0 ~request:[ (0, 3) ];
  check "ts at round 2: no wrap before boundary 0" 0
    (Color_state.timestamp s 0 ~round:2);
  Color_state.on_drop s ~round:4 ~dropped:[] ~in_cache:(fun _ -> true);
  Color_state.on_arrival s ~round:4 ~request:[ (0, 2) ];
  (* Wrap at round 4 too (cnt was 1, +2 = 3 >= 2). As of rounds 4-7 the
     most recent boundary is 4; the latest wrap before it is round 0. *)
  check "ts after boundary 4" 0 (Color_state.timestamp s 0 ~round:5);
  Color_state.on_drop s ~round:8 ~dropped:[] ~in_cache:(fun _ -> true);
  Color_state.on_arrival s ~round:8 ~request:[];
  (* As of round 8, latest wrap before boundary 8 is the round-4 wrap. *)
  check "ts after boundary 8" 4 (Color_state.timestamp s 0 ~round:9)

let test_drop_classification () =
  let s = Color_state.create ~delta:2 ~bounds:[| 2 |] () in
  Color_state.on_arrival s ~round:0 ~request:[ (0, 1) ];
  (* 1 < delta: ineligible when its job drops at round 2. *)
  Color_state.on_drop s ~round:2 ~dropped:[ (0, 1) ] ~in_cache:always_uncached;
  Color_state.on_arrival s ~round:2 ~request:[ (0, 3) ];
  (* wrap -> eligible; at round 4 (uncached) its pending jobs drop as
     eligible drops, then it resets. *)
  Color_state.on_drop s ~round:4 ~dropped:[ (0, 3) ] ~in_cache:always_uncached;
  let stats = Color_state.stats s in
  check "ineligible drops" 1 (H.stat stats "ineligible_drops");
  check "eligible drops" 3 (H.stat stats "eligible_drops")

let test_epoch_counting_includes_incomplete () =
  let s = Color_state.create ~delta:5 ~bounds:[| 2; 2 |] () in
  (* Color 0: full epoch (becomes eligible then resets). Color 1: a few
     jobs, never eligible -> one incomplete epoch. *)
  Color_state.on_arrival s ~round:0 ~request:[ (0, 5); (1, 1) ];
  Color_state.on_drop s ~round:2 ~dropped:[] ~in_cache:always_uncached;
  check "ended + incomplete" 2 (H.stat (Color_state.stats s) "epochs")

(* ---- Rankings ---- *)

let test_edf_ranking () =
  let s = Color_state.create ~delta:1 ~bounds:[| 4; 4; 8; 4 |] () in
  let pool = Job_pool.create ~num_colors:4 in
  (* All colors get boundary treatment at round 0. *)
  Color_state.on_arrival s ~round:0 ~request:[ (0, 1); (1, 1); (2, 1); (3, 1) ];
  (* color 1 idle (no pending), others nonidle. *)
  Job_pool.add pool ~color:0 ~deadline:4 ~count:1;
  Job_pool.add pool ~color:2 ~deadline:8 ~count:1;
  Job_pool.add pool ~color:3 ~deadline:4 ~count:1;
  let bounds = [| 4; 4; 8; 4 |] in
  let compare = Ranking.edf_compare s pool ~bounds in
  let sorted = List.sort compare [ 0; 1; 2; 3 ] in
  (* nonidle first; among nonidle: deadline 4 before 8; ties by color. *)
  Alcotest.(check (list int)) "edf order" [ 0; 3; 2; 1 ] sorted

let test_job_ranking () =
  let pool = Job_pool.create ~num_colors:3 in
  Job_pool.add pool ~color:0 ~deadline:6 ~count:1;
  Job_pool.add pool ~color:1 ~deadline:4 ~count:1;
  Job_pool.add pool ~color:2 ~deadline:6 ~count:1;
  let bounds = [| 8; 4; 4 |] in
  let compare = Ranking.job_compare pool ~bounds in
  let sorted = List.sort compare [ 0; 1; 2 ] in
  (* deadline 4 first; among deadline 6: smaller bound (color 2) first. *)
  Alcotest.(check (list int)) "job order" [ 1; 2; 0 ] sorted

(* ---- Cache layout ---- *)

let test_layout_keeps_existing () =
  let current = [| Some 1; Some 2; Some 1; None |] in
  let target = Cache_layout.place ~n:4 ~copies:2 ~current ~want:[ 1; 3 ] () in
  Alcotest.(check (array (option int)))
    "1 keeps both slots; 3 takes the rest"
    [| Some 1; Some 3; Some 1; Some 3 |]
    target

let test_layout_partial_keep () =
  let current = [| Some 1; None; None; None |] in
  let target = Cache_layout.place ~n:4 ~copies:2 ~current ~want:[ 1 ] () in
  Alcotest.(check (array (option int)))
    "second copy fills first free slot"
    [| Some 1; Some 1; None; None |]
    target

let test_layout_errors () =
  let current = [| None; None |] in
  (match Cache_layout.place ~n:2 ~copies:2 ~current ~want:[ 1; 2 ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "over capacity accepted");
  match Cache_layout.place ~n:2 ~copies:1 ~current ~want:[ 1; 1 ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate accepted"

let prop_layout_well_formed =
  QCheck2.Test.make ~name:"cache_layout: every wanted color gets exactly k copies"
    ~count:300
    QCheck2.Gen.(
      let* n = int_range 2 16 in
      let* copies = int_range 1 2 in
      let* want_size = int_range 0 (n / copies) in
      let want = List.init want_size (fun i -> i * 3) in
      let* current = array_size (return n) (option (int_bound 40)) in
      return (n, copies, current, want))
    (fun (n, copies, current, want) ->
      let target = Cache_layout.place ~n ~copies ~current ~want () in
      let count color =
        Array.fold_left
          (fun acc cell -> if cell = Some color then acc + 1 else acc)
          0 target
      in
      List.for_all (fun c -> count c = copies) want
      && Array.for_all
           (function None -> true | Some c -> List.mem c want)
           target)

let prop_layout_minimizes_moves =
  QCheck2.Test.make
    ~name:"cache_layout: never recolors a location already holding a wanted color"
    ~count:300
    QCheck2.Gen.(
      let* n = int_range 2 12 in
      let* want_size = int_range 0 (n / 2) in
      let want = List.init want_size Fun.id in
      let* current = array_size (return n) (option (int_bound 6)) in
      return (n, current, want))
    (fun (n, current, want) ->
      let target = Cache_layout.place ~n ~copies:2 ~current ~want () in
      (* Count per-color kept locations: for each wanted color, changed
         locations = copies - (kept existing), i.e. a location holding a
         wanted color may only change if that color already has 2 kept
         slots elsewhere. Equivalent check: #(locations where
         target = current = Some wanted) >= min(copies, #existing). *)
      List.for_all
        (fun color ->
          let existing =
            Array.fold_left
              (fun acc cell -> if cell = Some color then acc + 1 else acc)
              0 current
          in
          let kept = ref 0 in
          Array.iteri
            (fun i cell ->
              if cell = Some color && current.(i) = Some color then incr kept)
            target;
          !kept >= min 2 existing)
        want)

(* ---- Policy invariants on random instances ---- *)

let policy_invariant_test ~name ~policy ~max_distinct_of_n ~copies =
  QCheck2.Test.make ~name ~count:40 H.gen_rate_limited (fun instance ->
      let module P = (val policy : Rrs_sim.Policy.POLICY) in
      let module S = H.Spy (P) in
      S.expected_copies := copies;
      let n = 8 in
      let result, _schedule = H.run_validated ~n ~policy:(module S) instance in
      let stats = result.stats in
      H.stat stats "spy_max_distinct" <= max_distinct_of_n n
      && H.stat stats "spy_replication_violations" = 0)

let prop_lru_invariants =
  policy_invariant_test ~name:"dlru: <= n/2 distinct colors, all duplicated"
    ~policy:(module Rrs_core.Policy_lru)
    ~max_distinct_of_n:(fun n -> n / 2)
    ~copies:2

let prop_edf_invariants =
  policy_invariant_test ~name:"edf: <= n/2 distinct colors, all duplicated"
    ~policy:(module Rrs_core.Policy_edf)
    ~max_distinct_of_n:(fun n -> n / 2)
    ~copies:2

let prop_lru_edf_invariants =
  policy_invariant_test ~name:"dlru-edf: <= n/2 distinct colors, all duplicated"
    ~policy:(module Rrs_core.Policy_lru_edf)
    ~max_distinct_of_n:(fun n -> n / 2)
    ~copies:2

let prop_seq_edf_invariants =
  policy_invariant_test ~name:"seq-edf: <= n distinct colors, single copies"
    ~policy:(module Rrs_core.Seq_edf)
    ~max_distinct_of_n:(fun n -> n)
    ~copies:1

let prop_policies_validate_on_unbatched =
  (* The policies are defined for batched inputs but must stay feasible
     (valid schedules) on anything. *)
  QCheck2.Test.make ~name:"policies: valid schedules even on unbatched input"
    ~count:25 H.gen_unbatched (fun instance ->
      List.for_all
        (fun (_, policy) ->
          let _ = H.run_validated ~n:8 ~policy instance in
          true)
        Rrs_stats.Experiment.standard_policies)

(* ---- Directed scenarios ---- *)

let test_lru_killer_shape () =
  (* Appendix A: ΔLRU pins short-term colors and drops the whole backlog;
     ΔLRU-EDF must beat it by a wide margin. *)
  let adv = Rrs_workload.Adversary.lru_killer ~n:8 ~delta:2 ~j:5 ~k:8 in
  let lru = Engine.cost ~n:8 ~policy:(module Rrs_core.Policy_lru) adv.instance in
  let lru_edf =
    Engine.cost ~n:8 ~policy:(module Rrs_core.Policy_lru_edf) adv.instance
  in
  (* ΔLRU: n*delta reconfig + 2^k dropped long jobs, exactly. *)
  check "dlru cost" ((8 * 2) + 256) lru;
  check_bool "dlru-edf at most off" true (lru_edf <= adv.off_cost);
  check_bool "dlru much worse than dlru-edf" true (lru > 3 * lru_edf)

let test_edf_killer_shape () =
  (* Appendix B: EDF thrashes; its reconfiguration cost dominates, and
     grows with k - j while OFF stays fixed. *)
  let adv = Rrs_workload.Adversary.edf_killer ~n:4 ~delta:5 ~j:3 ~k:6 in
  let run policy = Engine.run ~record_events:false ~n:4 ~policy adv.instance in
  let edf = run (module Rrs_core.Policy_edf) in
  let edf_cost = Ledger.total_cost edf.ledger in
  check_bool "edf pays well above off" true (edf_cost > 2 * adv.off_cost);
  check_bool "edf cost is reconfiguration-dominated" true
    (Ledger.reconfig_cost edf.ledger > Ledger.drop_count edf.ledger)

let test_lru_edf_handles_both_adversaries () =
  let a = Rrs_workload.Adversary.lru_killer ~n:8 ~delta:2 ~j:5 ~k:9 in
  let b = Rrs_workload.Adversary.edf_killer ~n:4 ~delta:5 ~j:3 ~k:6 in
  List.iter
    (fun (adv : Rrs_workload.Adversary.lower_bound_input) ->
      let n = if adv == a then 8 else 4 in
      let cost = Engine.cost ~n ~policy:(module Rrs_core.Policy_lru_edf) adv.instance in
      check_bool
        (Printf.sprintf "dlru-edf within 4x of off on %s" adv.instance.name)
        true
        (cost <= 4 * adv.off_cost))
    [ a; b ]

let test_par_edf_optimal_drops () =
  (* 3 unit-bound jobs per round on 2 resources: exactly 1 drop/round. *)
  let i =
    Instance.make ~delta:1 ~bounds:[| 1; 1; 1 |]
      ~arrivals:(List.init 4 (fun r -> (r, [ (0, 1); (1, 1); (2, 1) ])))
      ()
  in
  let result = Rrs_core.Par_edf.run ~m:2 i in
  check "drops" 4 result.drops;
  check "executed" 8 result.executed;
  check_bool "not nice" false (Rrs_core.Par_edf.is_nice ~m:2 i);
  check_bool "nice with 3 resources" true (Rrs_core.Par_edf.is_nice ~m:3 i)

let test_par_edf_prefers_early_deadlines () =
  (* One resource, a tight job and a loose job arriving together: the
     tight one must be executed first; both complete. *)
  let i =
    Instance.make ~delta:1 ~bounds:[| 1; 4 |] ~arrivals:[ (0, [ (0, 1); (1, 1) ]) ] ()
  in
  let result = Rrs_core.Par_edf.run ~m:1 i in
  check "no drops" 0 result.drops;
  check "both executed" 2 result.executed

let quick name f = Alcotest.test_case name `Quick f
let prop p = QCheck_alcotest.to_alcotest p

let suite =
  [
    ( "core.color_state",
      [
        quick "wrap grants eligibility" test_eligibility_via_wrap;
        quick "uncached boundary resets" test_eligibility_reset_when_uncached;
        quick "cached boundary keeps eligibility" test_eligibility_kept_when_cached;
        quick "off-boundary rounds are inert" test_non_boundary_rounds_do_nothing;
        quick "timestamp = latest wrap before boundary" test_timestamp_definition;
        quick "drop classification" test_drop_classification;
        quick "epoch counting" test_epoch_counting_includes_incomplete;
      ] );
    ( "core.ranking",
      [
        quick "edf color ranking" test_edf_ranking;
        quick "pending job ranking" test_job_ranking;
      ] );
    ( "core.cache_layout",
      [
        quick "keeps existing placements" test_layout_keeps_existing;
        quick "fills missing copies" test_layout_partial_keep;
        quick "rejects bad inputs" test_layout_errors;
        prop prop_layout_well_formed;
        prop prop_layout_minimizes_moves;
      ] );
    ( "core.policies",
      [
        prop prop_lru_invariants;
        prop prop_edf_invariants;
        prop prop_lru_edf_invariants;
        prop prop_seq_edf_invariants;
        prop prop_policies_validate_on_unbatched;
        quick "appendix A shape" test_lru_killer_shape;
        quick "appendix B shape" test_edf_killer_shape;
        quick "dlru-edf survives both adversaries" test_lru_edf_handles_both_adversaries;
      ] );
    ( "core.par_edf",
      [
        quick "drop optimality on overload" test_par_edf_optimal_drops;
        quick "earliest deadline first" test_par_edf_prefers_early_deadlines;
      ] );
  ]
