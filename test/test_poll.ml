(* Smoke tests for the vendored poll(2) binding: these pin the stub's
   ABI (parallel int arrays, RRS_* bits) before the event loop builds on
   it, and the rlimit helpers the churn harness relies on. *)

let test_wait_readable_timeout () =
  let r, w = Unix.pipe () in
  (match Rrs_server.Poll.wait_readable ~timeout:0.05 r with
  | `Timeout -> ()
  | `Readable -> Alcotest.fail "empty pipe reported readable");
  assert (Unix.write_substring w "x" 0 1 = 1);
  (match Rrs_server.Poll.wait_readable ~timeout:5.0 r with
  | `Readable -> ()
  | `Timeout -> Alcotest.fail "pipe with a byte reported timeout");
  Unix.close r;
  Unix.close w

let test_wait_writable () =
  let r, w = Unix.pipe () in
  (match Rrs_server.Poll.wait_writable ~timeout:5.0 w with
  | `Writable -> ()
  | `Timeout -> Alcotest.fail "empty pipe reported unwritable");
  Unix.close r;
  Unix.close w

let test_multi_fd_revents () =
  let open Rrs_server.Poll in
  let r1, w1 = Unix.pipe () in
  let r2, w2 = Unix.pipe () in
  assert (Unix.write_substring w2 "y" 0 1 = 1);
  let fds = [| r1; r2; w1 |] in
  let events = [| pollin; pollin; pollout |] in
  let revents = [| -1; -1; -1 |] in
  let ready = poll ~fds ~events ~revents ~n:3 ~timeout_ms:1000 in
  Alcotest.(check int) "two entries ready" 2 ready;
  Alcotest.(check int) "r1 idle" 0 revents.(0);
  Alcotest.(check bool) "r2 readable" true (revents.(1) land pollin <> 0);
  Alcotest.(check bool) "w1 writable" true (revents.(2) land pollout <> 0);
  (* hangup: close the write side, the read side must report in/hup so
     the event loop notices EOF without a read call *)
  Unix.close w2;
  let revents1 = [| 0 |] in
  let ready =
    poll ~fds:[| r2 |] ~events:[| pollin |] ~revents:revents1 ~n:1
      ~timeout_ms:1000
  in
  Alcotest.(check int) "hung-up pipe ready" 1 ready;
  Alcotest.(check bool)
    "in or hup set" true
    (revents1.(0) land (pollin lor pollhup) <> 0);
  List.iter Unix.close [ r1; w1; r2 ]

let test_poll_beyond_fd_setsize () =
  (* The whole point of the refactor: a wait on an fd >= 1024 must work.
     Burn fd numbers with pipes until one crosses the select cliff. *)
  let limit = Rrs_server.Poll.raise_fd_limit 1200 in
  if limit < 1100 then ()
    (* can't raise the limit in this sandbox; nothing to pin *)
  else begin
    let burned = ref [] in
    let high = ref None in
    (try
       while !high = None do
         let r, w = Unix.pipe () in
         burned := r :: w :: !burned;
         if Obj.magic w >= 1024 then high := Some (r, w)
       done
     with Unix.Unix_error _ -> ());
    match !high with
    | None -> List.iter (fun fd -> try Unix.close fd with _ -> ()) !burned
    | Some (r, w) ->
        assert (Unix.write_substring w "z" 0 1 = 1);
        (match Rrs_server.Poll.wait_readable ~timeout:5.0 r with
        | `Readable -> ()
        | `Timeout -> Alcotest.fail "poll timed out on fd >= 1024");
        List.iter (fun fd -> try Unix.close fd with _ -> ()) !burned
  end

let test_fd_limit () =
  let now = Rrs_server.Poll.fd_limit () in
  Alcotest.(check bool) "limit positive" true (now > 0);
  let after = Rrs_server.Poll.raise_fd_limit (now + 16) in
  Alcotest.(check bool) "never lowered" true (after >= now);
  Alcotest.(check int) "fd_limit agrees" after (Rrs_server.Poll.fd_limit ())

let suite =
  [
    ( "poll",
      [
        Alcotest.test_case "wait_readable timeout then data" `Quick
          test_wait_readable_timeout;
        Alcotest.test_case "wait_writable" `Quick test_wait_writable;
        Alcotest.test_case "multi-fd revents" `Quick test_multi_fd_revents;
        Alcotest.test_case "poll works beyond FD_SETSIZE" `Quick
          test_poll_beyond_fd_setsize;
        Alcotest.test_case "fd limit helpers" `Quick test_fd_limit;
      ] );
  ]
