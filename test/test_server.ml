(* Serving-layer tests: rrs-wire/1 codec round trips (every frame type,
   qcheck), channel framing, a malformed-input corpus against a live
   server (the connection and the sessions behind it must survive),
   admission control (shed accounting + conservation), Engine-vs-Stepper
   stream identity, and snapshot/restore equivalence (qcheck: a run
   interrupted at a random round and restored finishes with the same
   ledger, assignment and byte-identical event stream as the
   uninterrupted run). *)

module Instance = Rrs_sim.Instance
module Engine = Rrs_sim.Engine
module Ledger = Rrs_sim.Ledger
module Stepper = Rrs_sim.Stepper
module Event_sink = Rrs_sim.Event_sink
module Wire = Rrs_server.Wire
module Session = Rrs_server.Session
module Server = Rrs_server.Server
module Client = Rrs_server.Client
module H = Test_helpers

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let policy : (module Rrs_sim.Policy.POLICY) = (module Rrs_core.Policy_lru_edf)

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

(* ---- wire codec: qcheck round trip over every frame type ---- *)

let gen_name =
  (* Session/policy strings, including characters the escaper must
     handle. *)
  QCheck2.Gen.(
    oneof
      [
        string_size ~gen:(char_range 'a' 'z') (int_range 1 12);
        return "s \"quoted\" \\ back";
        return "newline\nand\ttab";
        return "";
      ])

let gen_ints =
  QCheck2.Gen.(array_size (int_range 0 6) (int_range 0 1000))

let gen_opt_name = QCheck2.Gen.option gen_name

(* Half the generated Open/Feed frames carry a declaration — the wire
   extension is exercised alongside the pre-declaration shape. The /1
   encoding drops an all-zero burst array ([||]), so generate either
   empty or populated bursts and expect [||] back for empty. *)
let gen_decl : Wire.decl option QCheck2.Gen.t =
  QCheck2.Gen.(
    option
      (let* d_rates = array_size (int_range 1 6) (int_range 0 1000) in
       let* d_den = int_range 1 1000 in
       let* d_bursts =
         oneof
           [ return [||];
             array_size (int_range 1 6) (int_range 0 100) ]
       in
       return { Wire.d_rates; d_den; d_bursts }))

let gen_frame : Wire.frame QCheck2.Gen.t =
  QCheck2.Gen.(
    let* session = gen_name in
    let int = int_range 0 100_000 in
    oneof
      [
        (let* v = gen_name in
         return (Wire.Hello { client_version = v }));
        (let* policy = gen_name in
         let* delta = int and* n = int and* speed = int and* horizon = int in
         let* queue_limit = int and* bounds = gen_ints in
         let* decl = gen_decl in
         return
           (Wire.Open
              { session; policy; delta; bounds; n; speed; horizon;
                queue_limit; decl }));
        (let* colors = gen_ints and* counts = gen_ints in
         let* decl = gen_decl in
         return (Wire.Feed { session; colors; counts; decl }));
        (let* rounds = int in
         return (Wire.Step { session; rounds }));
        return (Wire.Stats { session });
        (let* path = gen_opt_name in
         return (Wire.Snapshot { session; path }));
        return (Wire.Close { session });
        (let* slow = int in
         return (Wire.Metrics { slow }));
        (let* v = gen_name in
         let* server = gen_name and* uptime_s = int in
         return (Wire.Hello_ok { server_version = v; server; uptime_s }));
        (let* round = int in
         return (Wire.Opened { session; round }));
        (let* accepted = int and* buffered = int in
         return (Wire.Fed { session; accepted; buffered }));
        (let* shed = int and* buffered = int and* limit = int in
         return (Wire.Shed { session; shed; buffered; limit }));
        (let* round = int and* pending = int and* cost = int in
         let* reconfigs = int and* drops = int and* execs = int in
         return
           (Wire.Stepped { session; round; pending; cost; reconfigs; drops; execs }));
        (let* round = int and* pending = int and* buffered = int in
         let* fed = int and* accepted = int and* shed = int in
         let* execs = int and* drops = int and* reconfigs = int in
         let* failed = int and* cost = int in
         let* wire = int and* bytes_in = int and* bytes_out = int in
         return
           (Wire.Stats_ok
              { session; round; pending; buffered; fed; accepted; shed; execs;
                drops; reconfigs; failed; cost; wire; bytes_in; bytes_out }));
        (let* path = gen_opt_name and* doc = gen_opt_name in
         return (Wire.Snapshotted { session; path; doc }));
        (let* doc = gen_name and* slow = gen_name in
         return (Wire.Metrics_ok { doc; slow }));
        (let* cost = int in
         return (Wire.Closed { session; cost }));
        (let* color = int_range (-1) 100 and* demand = int and* supply = int in
         let* message = gen_name in
         return (Wire.Admission_reject { session; color; demand; supply; message }));
        (let* message = gen_name in
         return (Wire.Error_frame { message }));
      ])

let prop_wire_roundtrip =
  QCheck2.Test.make ~name:"wire: decode (encode frame) = frame" ~count:500
    gen_frame (fun frame -> Wire.decode (Wire.encode frame) = Ok frame)

let prop_wire_framed_roundtrip =
  QCheck2.Test.make ~name:"wire: read (write frame) = frame through a channel"
    ~count:100 gen_frame (fun frame ->
      let path = Filename.temp_file "rrs_wire" ".txt" in
      let out = open_out path in
      Wire.write out frame;
      close_out out;
      let channel = open_in path in
      let input = Wire.reader channel in
      let result = Wire.read input in
      let eof = Wire.read input in
      close_in channel;
      Sys.remove path;
      result = Wire.Frame frame && eof = Wire.Eof)

let test_wire_malformed_lines () =
  let path = Filename.temp_file "rrs_wire" ".txt" in
  let out = open_out path in
  output_string out "this is not a frame\n";
  output_string out "999 {\"type\":\"stats\",\"session\":\"s\"}\n";
  output_string out "{\"type\":\"stats\",\"session\":\"s\"}\n";
  output_string out "8 {\"a\":1}\n";
  output_string out
    (Wire.frame_line (Wire.encode (Wire.Stats { session = "s" })));
  close_out out;
  let channel = open_in path in
  let input = Wire.reader channel in
  let malformed = function Wire.Malformed _ -> true | _ -> false in
  check_bool "garbage words" true (malformed (Wire.read input));
  check_bool "length mismatch" true (malformed (Wire.read input));
  check_bool "missing prefix" true (malformed (Wire.read input));
  check_bool "missing type" true (malformed (Wire.read input));
  check_bool "still synced: valid frame after garbage" true
    (Wire.read input = Wire.Frame (Wire.Stats { session = "s" }));
  check_bool "eof" true (Wire.read input = Wire.Eof);
  close_in channel;
  Sys.remove path

(* ---- session admission control ---- *)

let session_config ?(name = "t") () =
  { Stepper.name; delta = 3; bounds = [| 2; 3; 4 |]; n = 4; speed = 1;
    horizon = 0 }

let test_session_shed_and_conservation () =
  let session =
    match
      Session.create ~name:"shed" ~policy:"dlru-edf" ~queue_limit:5
        (session_config ())
    with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  (match Session.feed session ~colors:[| 0; 1 |] ~counts:[| 2; 2 |] with
  | Ok (Session.Accepted { accepted; buffered }) ->
      check "accepted" 4 accepted;
      check "buffered" 4 buffered
  | Ok _ -> Alcotest.fail "unexpected non-accept"
  | Error m -> Alcotest.fail m);
  (* 4 buffered + 2 > 5: the whole request is shed, nothing enqueued. *)
  (match Session.feed session ~colors:[| 2 |] ~counts:[| 2 |] with
  | Ok (Session.Shed_reply { shed; buffered; limit }) ->
      check "shed jobs" 2 shed;
      check "buffered unchanged" 4 buffered;
      check "limit" 5 limit
  | Ok _ -> Alcotest.fail "expected shed"
  | Error m -> Alcotest.fail m);
  (* A 1-job feed still fits. *)
  (match Session.feed session ~colors:[| 2 |] ~counts:[| 1 |] with
  | Ok (Session.Accepted { buffered; _ }) -> check "refilled" 5 buffered
  | _ -> Alcotest.fail "expected accept");
  (* An invalid feed is rejected outright and is not counted as fed. *)
  (match Session.feed session ~colors:[| 9 |] ~counts:[| 1 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for unknown color");
  (match Session.step session ~rounds:6 with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let st = Session.stats session in
  check "fed = accepted + shed" st.Session.st_fed
    (st.Session.st_accepted + st.Session.st_shed);
  check "accepted conserved" st.Session.st_accepted
    (st.Session.st_execs + st.Session.st_drops + st.Session.st_pending
   + st.Session.st_buffered);
  check "shed total" 2 st.Session.st_shed;
  match Session.close session with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m

(* Losing a close/close or close/release race must not raise out of the
   loser: the trace channel is closed exactly once. *)
let test_session_close_idempotent_trace () =
  let dir = Filename.temp_file "rrs_sess" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let session =
    match
      Session.create ~name:"twice" ~policy:"dlru-edf" ~trace_dir:dir
        (session_config ~name:"twice" ())
    with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  (match Session.step session ~rounds:2 with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match Session.close session with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (* Second close: an Error reply (double finish), never an exception. *)
  (match Session.close session with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "second close must not succeed");
  (* Release after close: a no-op, never an exception. *)
  Session.release session

(* ---- engine over stepper: stream identity ---- *)

let trace_engine ~n instance =
  let path = Filename.temp_file "rrs_engine" ".jsonl" in
  let channel = open_out path in
  let result =
    Engine.run ~sink:(Event_sink.Jsonl channel) ~n ~policy instance
  in
  close_out channel;
  (path, result)

let trace_stepper ~n instance =
  let path = Filename.temp_file "rrs_stepper" ".jsonl" in
  let channel = open_out path in
  let stepper =
    Stepper.create ~sink:(Event_sink.Jsonl channel) ~policy
      { Stepper.name = instance.Instance.name;
        delta = instance.Instance.delta; bounds = instance.Instance.bounds;
        n; speed = 1; horizon = instance.Instance.horizon }
  in
  for round = 0 to instance.Instance.horizon - 1 do
    Stepper.feed stepper instance.Instance.requests.(round);
    Stepper.step stepper
  done;
  let result = Stepper.finish stepper in
  close_out channel;
  (path, result)

let test_engine_stepper_identity () =
  let instance =
    Rrs_workload.Random_workloads.uniform ~seed:42 ~colors:6 ~delta:4
      ~bound_log_range:(0, 3) ~horizon:48 ~load:0.9 ~rate_limited:true ()
  in
  let engine_path, engine_result = trace_engine ~n:6 instance in
  let stepper_path, stepper_result = trace_stepper ~n:6 instance in
  check "same cost"
    (Ledger.total_cost engine_result.Engine.ledger)
    (Ledger.total_cost stepper_result.Stepper.ledger);
  check_string "byte-identical streams" (read_file engine_path)
    (read_file stepper_path);
  Sys.remove engine_path;
  Sys.remove stepper_path

(* Several feeds within one round must equal the one combined feed —
   the chunked buffer flattens in fed order before normalization. *)
let test_stepper_multi_feed_order () =
  let config =
    { Stepper.name = "chunks"; delta = 2; bounds = [| 2; 3; 4 |]; n = 4;
      speed = 1; horizon = 0 }
  in
  let chunked = Stepper.create ~policy config in
  Stepper.feed chunked [ (2, 1) ];
  Stepper.feed chunked [ (0, 2); (1, 1) ];
  Stepper.feed chunked [ (2, 3) ];
  let combined = Stepper.create ~policy config in
  Stepper.feed combined [ (2, 1); (0, 2); (1, 1); (2, 3) ];
  check "buffered jobs agree" (Stepper.buffered_jobs combined)
    (Stepper.buffered_jobs chunked);
  check_string "identical buffered snapshot line"
    (Stepper.snapshot combined) (Stepper.snapshot chunked);
  Stepper.step chunked;
  Stepper.step combined;
  check_string "identical state" (Stepper.snapshot combined)
    (Stepper.snapshot chunked);
  ignore (Stepper.finish chunked);
  ignore (Stepper.finish combined)

(* ---- snapshot / restore ---- *)

(* Interrupt a streamed run at [cut], restore from the snapshot into a
   fresh sink, finish both; ledgers, assignments and the full event
   streams must agree. *)
let run_with_interruption ~n ~cut instance =
  let full_path, full = trace_engine ~n instance in
  let part_path = Filename.temp_file "rrs_part" ".jsonl" in
  let channel = open_out part_path in
  let config =
    { Stepper.name = instance.Instance.name; delta = instance.Instance.delta;
      bounds = instance.Instance.bounds; n; speed = 1;
      horizon = instance.Instance.horizon }
  in
  let stepper =
    Stepper.create ~sink:(Event_sink.Jsonl channel) ~policy config
  in
  for round = 0 to cut - 1 do
    Stepper.feed stepper instance.Instance.requests.(round);
    Stepper.step stepper
  done;
  let snapshot = Stepper.snapshot stepper in
  (* The interrupted process dies here: its stream is abandoned. *)
  close_out channel;
  Sys.remove part_path;
  let resumed_path = Filename.temp_file "rrs_resumed" ".jsonl" in
  let channel = open_out resumed_path in
  let resumed =
    match
      Stepper.restore ~sink:(Event_sink.Jsonl channel) ~policy snapshot
    with
    | Ok stepper -> stepper
    | Error message -> Alcotest.failf "restore: %s" message
  in
  for round = cut to instance.Instance.horizon - 1 do
    Stepper.feed resumed instance.Instance.requests.(round);
    Stepper.step resumed
  done;
  let result = Stepper.finish resumed in
  close_out channel;
  let outcome =
    ( Ledger.total_cost full.Engine.ledger,
      Ledger.total_cost result.Stepper.ledger,
      full.Engine.final_assignment = result.Stepper.final_assignment,
      read_file full_path = read_file resumed_path )
  in
  Sys.remove full_path;
  Sys.remove resumed_path;
  outcome

let test_snapshot_restore_midrun () =
  let instance =
    Rrs_workload.Random_workloads.uniform ~seed:7 ~colors:5 ~delta:3
      ~bound_log_range:(0, 3) ~horizon:40 ~load:1.0 ~rate_limited:true ()
  in
  let full_cost, resumed_cost, same_assignment, same_stream =
    run_with_interruption ~n:5 ~cut:17 instance
  in
  check "same total cost" full_cost resumed_cost;
  check_bool "same final assignment" true same_assignment;
  check_bool "byte-identical stream after restore" true same_stream

let prop_snapshot_restore =
  QCheck2.Test.make
    ~name:"snapshot at a random round + restore = uninterrupted run"
    ~count:40
    QCheck2.Gen.(pair H.gen_rate_limited (int_bound 1_000_000))
    (fun (instance, cut_seed) ->
      let horizon = instance.Instance.horizon in
      QCheck2.assume (horizon > 1);
      let cut = 1 + (cut_seed mod (horizon - 1)) in
      let full_cost, resumed_cost, same_assignment, same_stream =
        run_with_interruption ~n:4 ~cut instance
      in
      full_cost = resumed_cost && same_assignment && same_stream)

(* ---- rrs-snap/2: checkpointed snapshot / restore ---- *)

(* As [run_with_interruption], but the interrupted stepper checkpoints
   every [checkpoint_every] rounds, so its snapshot is an [rrs-snap/2]
   document replaying only from the latest checkpoint. The restored
   stream then starts at that checkpoint: its header must equal the
   uninterrupted run's, a [restored] line carries the pre-checkpoint
   totals, and everything after it must be a byte-identical suffix of
   the uninterrupted stream. *)
let is_suffix ~of_:full suffix =
  let extra = List.length full - List.length suffix in
  extra >= 0 && List.filteri (fun i _ -> i >= extra) full = suffix

let restored_line line =
  String.length line >= 18 && String.sub line 0 18 = "{\"type\":\"restored\""

let run_with_interruption_v2 ~n ~cut ~checkpoint_every instance =
  let full_path, full = trace_engine ~n instance in
  let config =
    { Stepper.name = instance.Instance.name; delta = instance.Instance.delta;
      bounds = instance.Instance.bounds; n; speed = 1;
      horizon = instance.Instance.horizon }
  in
  let stepper = Stepper.create ~checkpoint_every ~policy config in
  for round = 0 to cut - 1 do
    Stepper.feed stepper instance.Instance.requests.(round);
    Stepper.step stepper
  done;
  let snapshot = Stepper.snapshot stepper in
  let resumed_path = Filename.temp_file "rrs_resumed2" ".jsonl" in
  let channel = open_out resumed_path in
  let resumed =
    match
      Stepper.restore ~sink:(Event_sink.Jsonl channel) ~policy snapshot
    with
    | Ok stepper -> stepper
    | Error message -> Alcotest.failf "restore (/2): %s" message
  in
  for round = cut to instance.Instance.horizon - 1 do
    Stepper.feed resumed instance.Instance.requests.(round);
    Stepper.step resumed
  done;
  let result = Stepper.finish resumed in
  close_out channel;
  let stream_ok =
    let full_lines = String.split_on_char '\n' (read_file full_path) in
    match String.split_on_char '\n' (read_file resumed_path) with
    | header :: rest ->
        let rest =
          match rest with
          | marker :: tail when restored_line marker -> tail
          | tail -> tail (* no checkpoint yet: a full replay, no marker *)
        in
        header = List.hd full_lines && is_suffix ~of_:(List.tl full_lines) rest
    | [] -> false
  in
  let outcome =
    ( Ledger.total_cost full.Engine.ledger,
      Ledger.total_cost result.Stepper.ledger,
      full.Engine.final_assignment = result.Stepper.final_assignment,
      stream_ok )
  in
  Sys.remove full_path;
  Sys.remove resumed_path;
  outcome

let prop_snapshot_restore_v2 =
  QCheck2.Test.make
    ~name:
      "rrs-snap/2: checkpointed snapshot at a random round + restore = \
       uninterrupted run"
    ~count:40
    QCheck2.Gen.(
      triple H.gen_rate_limited (int_bound 1_000_000) (int_range 1 8))
    (fun (instance, cut_seed, checkpoint_every) ->
      let horizon = instance.Instance.horizon in
      QCheck2.assume (horizon > 1);
      let cut = 1 + (cut_seed mod (horizon - 1)) in
      let full_cost, resumed_cost, same_assignment, stream_ok =
        run_with_interruption_v2 ~n:4 ~cut ~checkpoint_every instance
      in
      full_cost = resumed_cost && same_assignment && stream_ok)

(* Checkpointing compacts the replay base but must never perturb the
   run itself: same feeds, same events, byte for byte. *)
let test_checkpointing_does_not_perturb_stream () =
  let trace checkpoint_every =
    let path = Filename.temp_file "rrs_ck" ".jsonl" in
    let channel = open_out path in
    let stepper =
      Stepper.create ~checkpoint_every
        ~sink:(Event_sink.Jsonl channel) ~policy
        (session_config ~name:"ck" ())
    in
    for round = 0 to 29 do
      Stepper.feed stepper [ (round mod 3, 1 + (round mod 2)) ];
      Stepper.step stepper
    done;
    let result = Stepper.finish stepper in
    close_out channel;
    let text = read_file path in
    Sys.remove path;
    (text, Ledger.total_cost result.Stepper.ledger)
  in
  let plain, plain_cost = trace 0 in
  let checkpointed, checkpointed_cost = trace 4 in
  check "same cost" plain_cost checkpointed_cost;
  check_string "byte-identical streams" plain checkpointed

let test_checkpoint_compaction_bound () =
  let interval = 8 in
  let stepper =
    Stepper.create ~checkpoint_every:interval ~policy
      (session_config ~name:"bound" ())
  in
  let snap_early = ref 0 in
  for round = 0 to 99 do
    Stepper.feed stepper [ (round mod 3, 1) ];
    Stepper.step stepper;
    if round = 19 then snap_early := String.length (Stepper.snapshot stepper);
    if Stepper.history_rounds stepper > interval then
      Alcotest.failf "history grew to %d rounds (interval %d) at round %d"
        (Stepper.history_rounds stepper) interval (round + 1)
  done;
  check "base at the latest checkpoint" 96 (Stepper.base_round stepper);
  (* O(interval), not O(rounds): 5x the rounds, same ballpark bytes. *)
  let snap_late = String.length (Stepper.snapshot stepper) in
  check_bool "snapshot size stays flat" true (snap_late < 2 * !snap_early);
  (* A compacted stepper can no longer write /1 (its arrival history no
     longer reaches back to round 0) — refused, not silently wrong. *)
  (match Stepper.snapshot ~version:1 stepper with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rrs-snap/1 after compaction must be refused");
  ignore (Stepper.finish stepper)

(* serialize o deserialize is the identity for every registry policy
   (and the weighted Landlord): restoring a checkpointed snapshot and
   re-snapshotting it reproduces the document byte for byte, policy
   blob included. *)
let test_policy_blob_fixpoint () =
  let fixpoint (policy : (module Rrs_sim.Policy.POLICY)) =
    let (module P) = policy in
    let stepper =
      Stepper.create ~checkpoint_every:1 ~policy
        (session_config ~name:"fix" ())
    in
    for round = 0 to 11 do
      Stepper.feed stepper [ (round mod 3, 1 + (round mod 2)) ];
      Stepper.step stepper
    done;
    Stepper.feed stepper [ (1, 2) ];
    (* buffered jobs round-trip too *)
    let doc = Stepper.snapshot stepper in
    match Stepper.restore ~policy doc with
    | Error message -> Alcotest.failf "%s: restore: %s" P.name message
    | Ok restored ->
        check_string (P.name ^ ": snapshot fixpoint") doc
          (Stepper.snapshot restored)
  in
  List.iter fixpoint Rrs_core.Policies.all;
  fixpoint (Rrs_uniform.Landlord.policy ~drop_costs:[| 1; 2; 3 |])

let test_restore_rejects_tampering () =
  let stepper = Stepper.create ~policy (session_config ~name:"tamper" ())
  in
  Stepper.feed stepper [ (0, 2); (1, 1) ];
  Stepper.step stepper;
  Stepper.step stepper;
  let doc = Stepper.snapshot stepper in
  (* Corrupt the materialized counters: replay must detect the mismatch. *)
  let tampered =
    String.concat "\n"
      (List.map
         (fun line ->
           if String.length line > 24
              && String.sub line 0 24 = "{\"type\":\"check_counters\"" then
             "{\"type\":\"check_counters\",\"reconfigs\":9,\"failed\":0,\
              \"drops\":9,\"execs\":9,\"cost\":99}"
           else line)
         (String.split_on_char '\n' doc))
  in
  (match Stepper.restore ~policy tampered with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered snapshot must not restore");
  match Stepper.restore ~policy "not a snapshot" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not restore"

(* ---- live server: malformed corpus + session survival ---- *)

let with_server f =
  let dir = Filename.temp_file "rrs_srv" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let address = Server.Unix_socket (Filename.concat dir "sock") in
  let snap_dir = Filename.concat dir "snaps" in
  let config =
    { (Server.default_config address) with domains = 2;
      snap_dir = Some snap_dir }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop ~drain:false server))
    (fun () -> f ~address ~snap_dir)

let expect_ok = function
  | Ok (Wire.Error_frame { message }) -> Alcotest.failf "server error: %s" message
  | Ok frame -> frame
  | Error message -> Alcotest.fail message

(* [stats_ok] carries per-connection transport fields (negotiated wire
   version, server-side byte counts) that legitimately differ across
   connections, framings and even consecutive calls; zero them before
   comparing stats replies for session-semantic equality. *)
let normalize_stats = function
  | Wire.Stats_ok s -> Wire.Stats_ok { s with wire = 0; bytes_in = 0; bytes_out = 0 }
  | frame -> frame

let expect_error client = function
  | label -> (
      match Client.read_reply client with
      | Ok (Wire.Error_frame _) -> ()
      | Ok frame ->
          Alcotest.failf "%s: expected error, got %s" label (Wire.encode frame)
      | Error message -> Alcotest.failf "%s: %s" label message)

let malformed_corpus =
  [
    "complete garbage";
    "12";
    "";
    "-3 {}";
    "7 {\"typ\"";
    "999 {\"type\":\"stats\",\"session\":\"live\"}"; (* truncated frame *)
    "17 {\"type\":\"stats\"}"; (* missing required field *)
    "13 {\"type\":\"nope\"}"; (* unknown type *)
    "44 {\"type\":\"open\",\"session\":\"x\",\"policy\":\"dlru\"}";
    (* missing numeric fields *)
    "24 {\"type\":\"hello\",\"version\":1}"; (* wrong field type *)
  ]

let test_server_survives_malformed () =
  with_server (fun ~address ~snap_dir ->
      let client = Client.connect address in
      (* Wrong version: an [error] reply, not a disconnect. *)
      (match Client.call client (Wire.Hello { client_version = "rrs-wire/0" }) with
      | Ok (Wire.Error_frame _) -> ()
      | other ->
          Alcotest.failf "wrong version accepted: %s"
            (match other with Ok f -> Wire.encode f | Error e -> e));
      (match
         expect_ok
           (Client.call client (Wire.Hello { client_version = Wire.version }))
       with
      | Wire.Hello_ok _ -> ()
      | f -> Alcotest.failf "unexpected hello reply %s" (Wire.encode f));
      (match
         expect_ok
           (Client.call client
              (Wire.Open
                 { session = "live"; policy = "dlru"; delta = 2;
                   bounds = [| 2; 3 |]; n = 3; speed = 1; horizon = 0;
                   queue_limit = 0; decl = None }))
       with
      | Wire.Opened _ -> ()
      | f -> Alcotest.failf "unexpected open reply %s" (Wire.encode f));
      ignore
        (expect_ok
           (Client.call client
              (Wire.Feed { session = "live"; colors = [| 0 |]; counts = [| 3 |]; decl = None })));
      ignore (expect_ok (Client.call client (Wire.Step { session = "live"; rounds = 1 })));
      let stats_before =
        match expect_ok (Client.call client (Wire.Stats { session = "live" })) with
        | Wire.Stats_ok _ as s -> s
        | f -> Alcotest.failf "unexpected stats reply %s" (Wire.encode f)
      in
      (* The whole corpus: every line answered with [error], connection
         and session intact. *)
      List.iter
        (fun line ->
          Client.send_raw client line;
          expect_error client line)
        malformed_corpus;
      (* Protocol-level misuse (well-formed frames) also answers error. *)
      Client.send client (Wire.Stats { session = "no-such" });
      expect_error client "unknown session";
      Client.send client (Wire.Opened { session = "x"; round = 0 });
      expect_error client "reply frame as request";
      Client.send client
        (Wire.Open
           { session = "../evil"; policy = "dlru"; delta = 2;
             bounds = [| 2 |]; n = 1; speed = 1; horizon = 0; queue_limit = 0;
             decl = None });
      expect_error client "path-unsafe session name";
      (* Snapshot-to-file is confined to the server's snapshot
         directory: anything but a bare path-safe file name is refused. *)
      Client.send client
        (Wire.Snapshot { session = "live"; path = Some "../evil.sess.jsonl" });
      expect_error client "path-escaping snapshot file name";
      Client.send client
        (Wire.Snapshot { session = "live"; path = Some "/tmp/evil.sess.jsonl" });
      expect_error client "absolute snapshot path";
      (match
         expect_ok
           (Client.call client
              (Wire.Snapshot { session = "live"; path = Some "manual.snap" }))
       with
      | Wire.Snapshotted { path = Some path; _ } ->
          check_string "resolved inside snap_dir"
            (Filename.concat snap_dir "manual.snap") path;
          check_bool "snapshot file written" true (Sys.file_exists path)
      | f -> Alcotest.failf "unexpected snapshot reply %s" (Wire.encode f));
      (* The session is unharmed: same stats as before the corpus. *)
      let stats_after =
        expect_ok (Client.call client (Wire.Stats { session = "live" }))
      in
      check_string "session unharmed by corpus"
        (Wire.encode (normalize_stats stats_before))
        (Wire.encode (normalize_stats stats_after));
      (match expect_ok (Client.call client (Wire.Step { session = "live"; rounds = 2 })) with
      | Wire.Stepped { round; _ } -> check "still stepping" 3 round
      | f -> Alcotest.failf "unexpected step reply %s" (Wire.encode f));
      (match expect_ok (Client.call client (Wire.Close { session = "live" })) with
      | Wire.Closed _ -> ()
      | f -> Alcotest.failf "unexpected close reply %s" (Wire.encode f));
      Client.close client)

(* ---- live server: drain to disk + restore continues the ledger ---- *)

let feed_step client session colors counts =
  ignore (expect_ok (Client.call client (Wire.Feed { session; colors; counts; decl = None })));
  match expect_ok (Client.call client (Wire.Step { session; rounds = 1 })) with
  | Wire.Stepped _ -> ()
  | f -> Alcotest.failf "unexpected step reply %s" (Wire.encode f)

let test_server_drain_restore () =
  let dir = Filename.temp_file "rrs_drain" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let address = Server.Unix_socket (Filename.concat dir "sock") in
  let config =
    { (Server.default_config address) with
      domains = 2;
      snap_dir = Some (Filename.concat dir "snaps") }
  in
  (* Uninterrupted reference: same feeds against one server lifetime. *)
  let reference =
    with_server (fun ~address ~snap_dir:_ ->
        let client = Client.connect address in
        ignore
          (expect_ok
             (Client.call client
                (Wire.Open
                   { session = "d"; policy = "dlru-edf"; delta = 3;
                     bounds = [| 2; 2; 4 |]; n = 4; speed = 1; horizon = 0;
                     queue_limit = 0; decl = None })));
        feed_step client "d" [| 0; 1 |] [| 3; 2 |];
        feed_step client "d" [| 2 |] [| 4 |];
        feed_step client "d" [| 0; 2 |] [| 1; 2 |];
        feed_step client "d" [||] [||];
        let stats = expect_ok (Client.call client (Wire.Stats { session = "d" })) in
        Client.close client;
        Wire.encode (normalize_stats stats))
  in
  (* Interrupted: two server processes around a drain. *)
  let server1 = Server.start config in
  let client = Client.connect address in
  ignore
    (expect_ok
       (Client.call client
          (Wire.Open
             { session = "d"; policy = "dlru-edf"; delta = 3;
               bounds = [| 2; 2; 4 |]; n = 4; speed = 1; horizon = 0;
               queue_limit = 0; decl = None })));
  feed_step client "d" [| 0; 1 |] [| 3; 2 |];
  feed_step client "d" [| 2 |] [| 4 |];
  Client.close client;
  check "one session drained" 1 (Server.stop ~drain:true server1);
  let server2 = Server.start config in
  let client = Client.connect address in
  feed_step client "d" [| 0; 2 |] [| 1; 2 |];
  feed_step client "d" [||] [||];
  let stats = expect_ok (Client.call client (Wire.Stats { session = "d" })) in
  (* Closing deletes the drain snapshot; a second close is "no such
     session", not an internal error. *)
  (match expect_ok (Client.call client (Wire.Close { session = "d" })) with
  | Wire.Closed _ -> ()
  | f -> Alcotest.failf "unexpected close reply %s" (Wire.encode f));
  Client.send client (Wire.Close { session = "d" });
  expect_error client "double close";
  Client.close client;
  check_bool "closed session leaves no snapshot" false
    (Sys.file_exists
       (Filename.concat (Filename.concat dir "snaps") "d.sess.jsonl"));
  check "nothing left to drain" 0 (Server.stop ~drain:true server2);
  (* A restart after the close must not resurrect the session from a
     stale snapshot. *)
  let server3 = Server.start config in
  let client = Client.connect address in
  Client.send client (Wire.Stats { session = "d" });
  expect_error client "closed session resurrected after restart";
  Client.close client;
  ignore (Server.stop ~drain:false server3);
  check_string "ledger continues across restart" reference
    (Wire.encode (normalize_stats stats))

(* ---- rrs-wire/2: binary codec, resync, negotiation ---- *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    i + n <= h && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let prop_wire2_roundtrip =
  QCheck2.Test.make
    ~name:"wire/2: decode_binary (encode_binary frame) = frame" ~count:500
    gen_frame (fun frame ->
      Wire.decode_binary (Wire.encode_binary frame) = Ok frame)

let prop_wire2_framed_roundtrip =
  QCheck2.Test.make
    ~name:"wire/2: read (write frame) = frame through a channel" ~count:100
    gen_frame (fun frame ->
      let path = Filename.temp_file "rrs_wire2" ".bin" in
      let out = open_out_bin path in
      Wire.write ~framing:Wire.V2 out frame;
      close_out out;
      let channel = open_in_bin path in
      let input = Wire.reader channel in
      let result = Wire.read ~framing:Wire.V2 input in
      let eof = Wire.read ~framing:Wire.V2 input in
      close_in channel;
      Sys.remove path;
      result = Wire.Frame frame && eof = Wire.Eof)

let test_wire2_garbage_resync () =
  let stats = Wire.Stats { session = "s" } in
  let path = Filename.temp_file "rrs_wire2" ".bin" in
  let out = open_out_bin path in
  output_string out "textual garbage line\n";
  (* resync at the newline *)
  output_string out "x";
  (* resync right before the magic pair, no newline in between *)
  output_string out (Wire.encode_binary stats);
  output_string out (Wire.encode_binary stats);
  output_string out "trailing junk";
  close_out out;
  let channel = open_in_bin path in
  let input = Wire.reader channel in
  let next () = Wire.read ~framing:Wire.V2 input in
  let malformed = function Wire.Malformed _ -> true | _ -> false in
  check_bool "garbage line" true (malformed (next ()));
  check_bool "garbage before magic" true (malformed (next ()));
  check_bool "first frame after resync" true (next () = Wire.Frame stats);
  check_bool "second frame" true (next () = Wire.Frame stats);
  check_bool "trailing garbage" true (malformed (next ()));
  check_bool "eof" true (next () = Wire.Eof);
  close_in channel;
  Sys.remove path;
  (* A frame truncated mid-payload is EOF, not a stall or a crash. *)
  let whole = Wire.encode_binary stats in
  let cut = Filename.temp_file "rrs_wire2" ".bin" in
  let out = open_out_bin cut in
  output_string out (String.sub whole 0 (String.length whole - 3));
  close_out out;
  let channel = open_in_bin cut in
  let input = Wire.reader channel in
  check_bool "truncated frame is eof" true
    (Wire.read ~framing:Wire.V2 input = Wire.Eof);
  close_in channel;
  Sys.remove cut

(* ---- forward compatibility, both framings ----

   The declaration extension rides on exactly these rules, so pin them:
   /1 decoders ignore unknown JSON fields on known frames (a future
   sender is understood, minus its extras) and answer unknown types with
   a per-frame error; /2 decoders answer unknown tags and unexpected
   trailing bytes with a per-frame error and resynchronize at the next
   magic pair — never a desync or a crash. *)
let test_wire_forward_compat () =
  (* /1: unknown extra fields on a known frame are tolerated. *)
  (match
     Wire.decode
       "{\"type\":\"step\",\"session\":\"s\",\"rounds\":2,\
        \"future_knob\":7,\"note\":\"x\"}"
   with
  | Ok (Wire.Step { session = "s"; rounds = 2 }) -> ()
  | Ok f -> Alcotest.failf "extras changed the frame: %s" (Wire.encode f)
  | Error m -> Alcotest.failf "/1 extras rejected: %s" m);
  (* /1: the declaration is keyed on rate_den — with it, declared; a
     stray "rates" alone reads as one more unknown extra. *)
  let open_json decl_fields =
    "{\"type\":\"open\",\"session\":\"s\",\"policy\":\"dlru\",\"delta\":2,\
     \"bounds\":[4],\"n\":1,\"speed\":1,\"horizon\":0,\"queue_limit\":0"
    ^ decl_fields ^ "}"
  in
  (match Wire.decode (open_json ",\"rates\":[3],\"rate_den\":4,\"bursts\":[2]") with
  | Ok (Wire.Open { decl = Some { d_rates = [| 3 |]; d_den = 4; d_bursts = [| 2 |] }; _ })
    -> ()
  | Ok f -> Alcotest.failf "declared open misread: %s" (Wire.encode f)
  | Error m -> Alcotest.failf "declared open rejected: %s" m);
  (match Wire.decode (open_json ",\"rates\":[3]") with
  | Ok (Wire.Open { decl = None; _ }) -> ()
  | Ok f -> Alcotest.failf "rates without rate_den misread: %s" (Wire.encode f)
  | Error m -> Alcotest.failf "stray rates rejected: %s" m);
  (* /1: unknown type answers an error, not a crash. *)
  (match Wire.decode "{\"type\":\"frobnicate\",\"session\":\"s\"}" with
  | Error _ -> ()
  | Ok f -> Alcotest.failf "unknown type accepted: %s" (Wire.encode f));
  (* /2: an unknown tag is a clean per-frame error... *)
  let stats = Wire.Stats { session = "s" } in
  let encoded = Wire.encode_binary stats in
  let retagged = Bytes.of_string encoded in
  Bytes.set retagged 6 '\x63' (* tag 99 *);
  (match Wire.decode_binary (Bytes.to_string retagged) with
  | Error m -> check_bool "names the tag" true (contains ~needle:"99" m)
  | Ok f -> Alcotest.failf "unknown tag accepted: %s" (Wire.encode f));
  (* ...and the stream reader steps over it to the next frame. *)
  let path = Filename.temp_file "rrs_fwd" ".bin" in
  let out = open_out_bin path in
  output_string out (Bytes.to_string retagged);
  output_string out (Wire.encode_binary stats);
  close_out out;
  let channel = open_in_bin path in
  let input = Wire.reader channel in
  (match Wire.read ~framing:Wire.V2 input with
  | Wire.Malformed _ -> ()
  | Wire.Frame f -> Alcotest.failf "unknown tag read as %s" (Wire.encode f)
  | Wire.Eof -> Alcotest.fail "unknown tag read as eof");
  check_bool "resynced on the next frame" true
    (Wire.read ~framing:Wire.V2 input = Wire.Frame stats);
  close_in channel;
  Sys.remove path;
  (* /2: trailing bytes after a complete payload are refused — on a
     frame with no extension point... *)
  let with_trailing frame junk =
    let whole = Wire.encode_binary frame in
    let payload = String.sub whole 7 (String.length whole - 7) ^ junk in
    let n = String.length payload in
    let header = Bytes.create 7 in
    Bytes.set header 0 '\xF2';
    Bytes.set header 1 'R';
    Bytes.set header 2 (Char.chr ((n lsr 24) land 0xff));
    Bytes.set header 3 (Char.chr ((n lsr 16) land 0xff));
    Bytes.set header 4 (Char.chr ((n lsr 8) land 0xff));
    Bytes.set header 5 (Char.chr (n land 0xff));
    Bytes.set header 6 whole.[6];
    Bytes.to_string header ^ payload
  in
  (match Wire.decode_binary (with_trailing stats "\x00") with
  | Error m -> check_bool "trailing named" true (contains ~needle:"trailing" m)
  | Ok f -> Alcotest.failf "trailing bytes accepted: %s" (Wire.encode f));
  (* ...and on the frames with the optional declaration group, where
     junk that is not a valid group is refused rather than guessed at. *)
  let undeclared =
    Wire.Open
      { session = "s"; policy = "dlru"; delta = 2; bounds = [| 4 |]; n = 1;
        speed = 1; horizon = 0; queue_limit = 0; decl = None }
  in
  match Wire.decode_binary (with_trailing undeclared "\x00") with
  | Error _ -> ()
  | Ok f -> Alcotest.failf "junk read as a declaration: %s" (Wire.encode f)

(* A payload bigger than the reader's 64 KiB chunk exercises the
   read-past-the-buffer path. *)
let test_wire2_large_frame () =
  let colors = Array.init 20_000 (fun i -> i land 0xffff) in
  let counts = Array.init 20_000 (fun i -> i * 7 land 0xffff) in
  let frame = Wire.Feed { session = "big"; colors; counts; decl = None } in
  let encoded = Wire.encode_binary frame in
  check_bool "payload exceeds one reader chunk" true
    (String.length encoded > 64 * 1024);
  check_bool "decodes in memory" true (Wire.decode_binary encoded = Ok frame);
  let path = Filename.temp_file "rrs_wire2" ".bin" in
  let out = open_out_bin path in
  Wire.write ~framing:Wire.V2 out frame;
  Wire.write ~framing:Wire.V2 out (Wire.Stats { session = "after" });
  close_out out;
  let channel = open_in_bin path in
  let input = Wire.reader channel in
  check_bool "large frame round trips" true
    (Wire.read ~framing:Wire.V2 input = Wire.Frame frame);
  check_bool "reader still synced after it" true
    (Wire.read ~framing:Wire.V2 input
    = Wire.Frame (Wire.Stats { session = "after" }));
  check_bool "eof" true (Wire.read ~framing:Wire.V2 input = Wire.Eof);
  close_in channel;
  Sys.remove path

(* ---- regression: Session.save must not leave its temp file behind ---- *)

let test_session_save_failure_cleans_tmp () =
  let dir = Filename.temp_file "rrs_save" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  (* Renaming a file onto an existing directory fails, after the
     document was already written to the temp file. *)
  let target = Filename.concat dir "snap.sess.jsonl" in
  Unix.mkdir target 0o700;
  let session =
    match
      Session.create ~name:"savefail" ~policy:"dlru-edf"
        (session_config ~name:"savefail" ())
    with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  (match Session.save session ~path:target with
  | () -> Alcotest.fail "save onto a directory must fail"
  | exception Sys_error _ -> ());
  check_bool "temp file removed on failure" false
    (Sys.file_exists (target ^ ".tmp"));
  Session.release session

(* ---- regression: restore validates embedded names, first snapshot
   wins a collision ---- *)

let make_session ?(rounds = 0) name =
  match
    Session.create ~name ~policy:"dlru-edf" (session_config ~name ())
  with
  | Error m -> Alcotest.fail m
  | Ok s ->
      if rounds > 0 then
        (match Session.step s ~rounds with
        | Ok _ -> ()
        | Error m -> Alcotest.fail m);
      s

let test_restore_validates_names () =
  let dir = Filename.temp_file "rrs_restore" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let snaps = Filename.concat dir "snaps" in
  Unix.mkdir snaps 0o700;
  (* A snapshot whose embedded session name escapes the directory: the
     file name is innocuous, the name inside is not. *)
  let evil = make_session "../escape" in
  Session.save evil ~path:(Filename.concat snaps "aaa-evil.sess.jsonl");
  Session.release evil;
  (* Two snapshots claiming the same name at different rounds: the
     first in file order must win, deterministically. *)
  let dup1 = make_session ~rounds:1 "dup" in
  Session.save dup1 ~path:(Filename.concat snaps "d1.sess.jsonl");
  Session.release dup1;
  let dup2 = make_session ~rounds:3 "dup" in
  Session.save dup2 ~path:(Filename.concat snaps "d2.sess.jsonl");
  Session.release dup2;
  let good = make_session ~rounds:1 "good" in
  Session.save good ~path:(Filename.concat snaps "good.sess.jsonl");
  Session.release good;
  let address = Server.Unix_socket (Filename.concat dir "sock") in
  let config =
    { (Server.default_config address) with domains = 2;
      snap_dir = Some snaps }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop ~drain:false server))
    (fun () ->
      let client = Client.connect address in
      Client.send client (Wire.Stats { session = "../escape" });
      expect_error client "path-unsafe restored name must not register";
      (match expect_ok (Client.call client (Wire.Stats { session = "dup" })) with
      | Wire.Stats_ok { round; _ } -> check "first snapshot wins" 1 round
      | f -> Alcotest.failf "unexpected stats reply %s" (Wire.encode f));
      (match expect_ok (Client.call client (Wire.Stats { session = "good" })) with
      | Wire.Stats_ok { round; _ } -> check "valid snapshot restored" 1 round
      | f -> Alcotest.failf "unexpected stats reply %s" (Wire.encode f));
      Client.close client)

(* ---- regression: a session snapshot whose declared snap_version
   disagrees with the embedded stepper document schema is corrupt (a
   spliced or hand-edited file) and must not restore ---- *)

let test_restore_rejects_mixed_versions () =
  let config = session_config ~name:"mix" () in
  let make_body ~checkpoint_every =
    let stepper = Stepper.create ~checkpoint_every ~policy config in
    Stepper.feed stepper [ (0, 2); (1, 1) ];
    for _ = 1 to 4 do
      Stepper.step stepper
    done;
    Stepper.snapshot stepper
  in
  let body_v1 = make_body ~checkpoint_every:0 in
  let body_v2 = make_body ~checkpoint_every:2 in
  let header ?snap_version () =
    let version =
      match snap_version with
      | None -> ""
      | Some v -> Printf.sprintf ",\"snap_version\":%d" v
    in
    Printf.sprintf
      "{\"schema\":\"rrs-sess/1\",\"session\":\"mix\",\"policy\":\"dlru-edf\",\
       \"queue_limit\":16,\"fed\":3,\"shed\":0%s}"
      version
  in
  let mixed reason header body =
    match Session.restore (header ^ "\n" ^ body) with
    | Error _ -> ()
    | Ok s ->
        Session.release s;
        Alcotest.failf "%s must not restore" reason
  in
  mixed "an undeclared (/1) header over a /2 body" (header ()) body_v2;
  mixed "a declared /1 header over a /2 body" (header ~snap_version:1 ())
    body_v2;
  mixed "a declared /2 header over a /1 body" (header ~snap_version:2 ())
    body_v1;
  (* The consistent pairings still restore. *)
  (match Session.restore (header ~snap_version:1 () ^ "\n" ^ body_v1) with
  | Ok s -> Session.release s
  | Error m -> Alcotest.failf "consistent /1 pairing: %s" m);
  match Session.restore (header ~snap_version:2 () ^ "\n" ^ body_v2) with
  | Ok s -> Session.release s
  | Error m -> Alcotest.failf "consistent /2 pairing: %s" m

(* ---- regression: unresolvable TCP hosts fail cleanly ---- *)

let test_unknown_host () =
  (match Server.resolve_host "127.0.0.1" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let bad = "no-such-host.invalid" in
  (match Server.resolve_host bad with
  | Error message ->
      check_bool "resolver error names the host" true
        (contains ~needle:bad message)
  | Ok _ -> Alcotest.failf "resolved reserved name %s" bad);
  (match Server.start (Server.default_config (Server.Tcp (bad, 0))) with
  | _server -> Alcotest.fail "started a server on an unresolvable host"
  | exception Failure message ->
      check_bool "serve failure names the host" true
        (contains ~needle:bad message));
  match Client.connect (Server.Tcp (bad, 1)) with
  | _client -> Alcotest.fail "connected to an unresolvable host"
  | exception Failure message ->
      check_bool "connect failure names the host" true
        (contains ~needle:bad message)

(* ---- regression: open constructs its session outside the manager
   lock ---- *)

(* The trace file of session "slow" is a FIFO with no reader, so the
   server's [open_out] inside [Session.create] blocks until the test
   attaches one. A second connection opening an unrelated session must
   still be served meanwhile — before the fix, construction ran under
   the manager mutex and every other connection stalled behind it. *)
let test_open_constructs_outside_lock () =
  let dir = Filename.temp_file "rrs_lock" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let traces = Filename.concat dir "traces" in
  Unix.mkdir traces 0o700;
  let fifo = Filename.concat traces "slow.events.jsonl" in
  Unix.mkfifo fifo 0o600;
  let sock = Filename.concat dir "sock" in
  let address = Server.Unix_socket sock in
  let config =
    { (Server.default_config address) with domains = 2;
      trace_dir = Some traces }
  in
  let server = Server.start config in
  let fifo_reader = ref None in
  let open_frame session =
    Wire.Open
      { session; policy = "dlru-edf"; delta = 3; bounds = [| 2; 3; 4 |];
        n = 4; speed = 1; horizon = 0; queue_limit = 0; decl = None }
  in
  Fun.protect
    ~finally:(fun () ->
      (* Attach a FIFO reader first: if the server is (buggily) still
         blocked inside the open, [stop] would never join its worker. *)
      if !fifo_reader = None then
        (try
           fifo_reader :=
             Some (Unix.openfile fifo [ Unix.O_RDONLY; Unix.O_NONBLOCK ] 0)
         with Unix.Unix_error _ -> ());
      ignore (Server.stop ~drain:false server);
      Option.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        !fifo_reader)
    (fun () ->
      let a = Client.connect address in
      Client.send a (open_frame "slow");
      (* Let connection A reach the blocking trace-file open. *)
      Unix.sleepf 0.2;
      let fd_b = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd_b (Unix.ADDR_UNIX sock);
      let b = Client.connect_fd fd_b in
      Client.send b (open_frame "fast");
      (match Unix.select [ fd_b ] [] [] 10.0 with
      | [], _, _ ->
          Alcotest.fail
            "opening one session stalled every other connection \
             (session constructed under the manager lock)"
      | _ -> ());
      (match expect_ok (Client.read_reply b) with
      | Wire.Opened { session = "fast"; _ } -> ()
      | f -> Alcotest.failf "unexpected open reply %s" (Wire.encode f));
      (* Unblock A and check its open completes normally. *)
      fifo_reader :=
        Some (Unix.openfile fifo [ Unix.O_RDONLY; Unix.O_NONBLOCK ] 0);
      (match expect_ok (Client.read_reply a) with
      | Wire.Opened { session = "slow"; _ } -> ()
      | f -> Alcotest.failf "unexpected open reply %s" (Wire.encode f));
      Client.close a;
      Client.close b)

(* ---- live server: /2 negotiation, resync, and /1-vs-/2 equality ---- *)

let open_frame_for session =
  Wire.Open
    { session; policy = "dlru-edf"; delta = 3; bounds = [| 2; 3; 4 |]; n = 4;
      speed = 1; horizon = 0; queue_limit = 6; decl = None }

let test_wire2_live_negotiation () =
  with_server (fun ~address ~snap_dir:_ ->
      let client = Client.connect address in
      check "starts at /1" 1 (Client.wire_version client);
      (match Client.negotiate client ~wire:2 with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      check "negotiated /2" 2 (Client.wire_version client);
      ignore (expect_ok (Client.call client (open_frame_for "v2")));
      feed_step client "v2" [| 0 |] [| 2 |];
      let before =
        expect_ok (Client.call client (Wire.Stats { session = "v2" }))
      in
      (* Textual garbage on a binary connection: answered with [error],
         resynchronized at the newline. *)
      Client.send_raw client "complete garbage";
      expect_error client "textual garbage on /2";
      Client.send_raw client "999 {\"type\":\"stats\",\"session\":\"v2\"}";
      expect_error client "/1 frame on a /2 connection";
      let after =
        expect_ok (Client.call client (Wire.Stats { session = "v2" }))
      in
      check_string "session unharmed by garbage"
        (Wire.encode (normalize_stats before))
        (Wire.encode (normalize_stats after));
      (* hello over the binary framing re-states the version. *)
      (match
         expect_ok
           (Client.call client (Wire.Hello { client_version = Wire.version2 }))
       with
      | Wire.Hello_ok { server_version; _ } ->
          check_string "still /2" Wire.version2 server_version
      | f -> Alcotest.failf "unexpected hello reply %s" (Wire.encode f));
      (match expect_ok (Client.call client (Wire.Close { session = "v2" })) with
      | Wire.Closed _ -> ()
      | f -> Alcotest.failf "unexpected close reply %s" (Wire.encode f));
      Client.close client)

let test_server_pinned_to_wire1 () =
  let dir = Filename.temp_file "rrs_pin" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let address = Server.Unix_socket (Filename.concat dir "sock") in
  let config =
    { (Server.default_config address) with domains = 2; max_wire = 1 }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop ~drain:false server))
    (fun () ->
      let client = Client.connect address in
      (match Client.negotiate client ~wire:2 with
      | Error message ->
          check_bool "refusal names the supported version" true
            (contains ~needle:Wire.version message)
      | Ok () -> Alcotest.fail "a max_wire=1 server accepted /2");
      check "still /1" 1 (Client.wire_version client);
      (* The refusal is an [error] reply, not a disconnect. *)
      (match
         expect_ok
           (Client.call client (Wire.Hello { client_version = Wire.version }))
       with
      | Wire.Hello_ok _ -> ()
      | f -> Alcotest.failf "unexpected hello reply %s" (Wire.encode f));
      Client.close client)

(* The same script through a /1 and a /2 connection must produce the
   same replies frame for frame (the framing changes the bytes, never
   the semantics) — and strictly fewer wire bytes under /2. *)
let test_wire_equality_across_framings () =
  with_server (fun ~address ~snap_dir:_ ->
      let script client =
        let replies = ref [] in
        let call frame =
          replies := normalize_stats (expect_ok (Client.call client frame)) :: !replies
        in
        call (open_frame_for "eq");
        call (Wire.Feed { session = "eq"; colors = [| 0; 1 |]; counts = [| 3; 2 |]; decl = None });
        call (Wire.Step { session = "eq"; rounds = 2 });
        (* 9 jobs against queue_limit 6: a shed reply. *)
        call (Wire.Feed { session = "eq"; colors = [| 2 |]; counts = [| 9 |]; decl = None });
        call (Wire.Stats { session = "eq" });
        call (Wire.Close { session = "eq" });
        List.rev_map Wire.encode !replies
      in
      let c1 = Client.connect address in
      let replies1 = script c1 in
      let v1_bytes = Client.bytes_sent c1 + Client.bytes_received c1 in
      Client.close c1;
      let c2 = Client.connect address in
      (match Client.negotiate c2 ~wire:2 with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      let replies2 = script c2 in
      let v2_bytes = Client.bytes_sent c2 + Client.bytes_received c2 in
      Client.close c2;
      Alcotest.(check (list string))
        "identical replies across framings" replies1 replies2;
      (* v2 even pays for an extra hello exchange and still wins. *)
      check_bool "binary framing moved fewer bytes" true (v2_bytes < v1_bytes))

(* ---- regression: oversize replies answer a clean error ---- *)

(* Why the server must guard its replies: the wire writer happily emits
   a frame larger than [Wire.max_frame], but no reader will ever accept
   it — the peer sees [Malformed], not its snapshot. *)
let test_wire_overlong_frame_unreceivable () =
  let doc = String.make Wire.max_frame 'x' in
  let frame = Wire.Snapshotted { session = "s"; path = None; doc = Some doc } in
  List.iter
    (fun framing ->
      let path = Filename.temp_file "rrs_long" ".bin" in
      let out = open_out_bin path in
      Wire.write ~framing out frame;
      close_out out;
      let channel = open_in_bin path in
      let input = Wire.reader channel in
      (match Wire.read ~framing input with
      | Wire.Malformed _ -> ()
      | Wire.Frame _ -> Alcotest.fail "a reader accepted an over-long frame"
      | Wire.Eof -> Alcotest.fail "over-long frame read as eof");
      close_in channel;
      Sys.remove path)
    [ Wire.V1; Wire.V2 ]

(* A [max_reply] cap small enough to trip with a few rounds of history:
   the inline snapshot answers an [error] naming the limit, the
   connection stays framed and synced, and snapshot-to-file still
   works — that path never goes through a reply frame. *)
let test_oversize_inline_snapshot_reply () =
  let dir = Filename.temp_file "rrs_big" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let address = Server.Unix_socket (Filename.concat dir "sock") in
  let snaps = Filename.concat dir "snaps" in
  let config =
    { (Server.default_config address) with domains = 2; max_reply = 2048;
      snap_dir = Some snaps }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop ~drain:false server))
    (fun () ->
      let client = Client.connect address in
      ignore (expect_ok (Client.call client (open_frame_for "big")));
      for _ = 1 to 80 do
        feed_step client "big" [| 0; 1; 2 |] [| 1; 1; 1 |]
      done;
      (match
         Client.call client (Wire.Snapshot { session = "big"; path = None })
       with
      | Ok (Wire.Error_frame { message }) ->
          check_bool "error names the frame limit" true
            (contains ~needle:"2048-byte frame limit" message)
      | Ok Wire.Snapshotted _ ->
          Alcotest.fail "an oversize inline snapshot reply went unguarded"
      | Ok f -> Alcotest.failf "unexpected snapshot reply %s" (Wire.encode f)
      | Error message -> Alcotest.fail message);
      (* The connection survived and is still framed. *)
      (match expect_ok (Client.call client (Wire.Stats { session = "big" })) with
      | Wire.Stats_ok { round; _ } -> check "session intact" 80 round
      | f -> Alcotest.failf "unexpected stats reply %s" (Wire.encode f));
      (* The unbounded escape hatch: snapshot to a file. *)
      (match
         expect_ok
           (Client.call client
              (Wire.Snapshot { session = "big"; path = Some "big.snap" }))
       with
      | Wire.Snapshotted { path = Some path; _ } ->
          check_bool "file snapshot written" true (Sys.file_exists path)
      | f -> Alcotest.failf "unexpected snapshot reply %s" (Wire.encode f));
      Client.close client)

(* ---- regression: signal churn during accept must not kill the
   accept loop or drop connections ---- *)

(* SIGUSR1 is blocked in this (the test's) thread before the churn
   domain spawns — it inherits the blocked mask — so every signal is
   delivered to the server's domains, which sit in select/accept. The
   server was started before the block, with the signal deliverable. *)
let test_accept_survives_signal_churn () =
  with_server (fun ~address ~snap_dir:_ ->
      let previous =
        Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ()))
      in
      let mask = [ Sys.sigusr1 ] in
      ignore (Unix.sigprocmask Unix.SIG_BLOCK mask);
      let stop = Atomic.make false in
      let pid = Unix.getpid () in
      let churn =
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              (try Unix.kill pid Sys.sigusr1 with Unix.Unix_error _ -> ());
              try ignore (Unix.select [] [] [] 0.001)
              with Unix.Unix_error (Unix.EINTR, _, _) -> ()
            done)
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          Domain.join churn;
          ignore (Unix.sigprocmask Unix.SIG_UNBLOCK mask);
          Sys.set_signal Sys.sigusr1 previous)
        (fun () ->
          for i = 0 to 14 do
            let name = Printf.sprintf "churn%d" i in
            let client = Client.connect address in
            ignore (expect_ok (Client.call client (open_frame_for name)));
            feed_step client name [| 0 |] [| 1 |];
            (match
               expect_ok (Client.call client (Wire.Close { session = name }))
             with
            | Wire.Closed _ -> ()
            | f -> Alcotest.failf "unexpected close reply %s" (Wire.encode f));
            Client.close client
          done))

(* ---- observability: metrics plane, slow log, exposition ---- *)

module Metrics = Rrs_server.Metrics
module Exposition = Rrs_server.Exposition
module Json = Rrs_sim.Event_sink.Json

(* The 'metrics' wire request must reconcile with the connection's own
   transcript: per-kind request counters, error counts, shed jobs and
   executed rounds are exactly what this client saw, and the stats_ok
   transport fields mirror the client's byte counters. *)
let test_metrics_reconciliation () =
  with_server (fun ~address ~snap_dir:_ ->
      let client = Client.connect address in
      (match
         expect_ok
           (Client.call client (Wire.Hello { client_version = Wire.version }))
       with
      | Wire.Hello_ok { server_version; server; uptime_s } ->
          check_string "negotiated /1" Wire.version server_version;
          check_string "server identity surfaced" "rrs" server;
          check_bool "uptime surfaced" true (uptime_s >= 0)
      | f -> Alcotest.failf "unexpected hello reply %s" (Wire.encode f));
      ignore (expect_ok (Client.call client (open_frame_for "obs")));
      ignore
        (expect_ok
           (Client.call client
              (Wire.Feed { session = "obs"; colors = [| 0; 1 |]; counts = [| 3; 2 |]; decl = None })));
      (* 5 buffered + 9 > queue_limit 6: the whole feed is shed. *)
      let shed_jobs =
        match
          expect_ok
            (Client.call client
               (Wire.Feed { session = "obs"; colors = [| 2 |]; counts = [| 9 |]; decl = None }))
        with
        | Wire.Shed { shed; _ } -> shed
        | f -> Alcotest.failf "expected a shed reply, got %s" (Wire.encode f)
      in
      (match
         expect_ok (Client.call client (Wire.Step { session = "obs"; rounds = 3 }))
       with
      | Wire.Stepped _ -> ()
      | f -> Alcotest.failf "unexpected step reply %s" (Wire.encode f));
      Client.send client (Wire.Stats { session = "nope" });
      expect_error client "unknown session";
      (* Server-side byte accounting: with a strict request/reply
         protocol the server has read exactly what we sent and written
         exactly what we received. *)
      let received_before = Client.bytes_received client in
      (match expect_ok (Client.call client (Wire.Stats { session = "obs" })) with
      | Wire.Stats_ok { wire; bytes_in; bytes_out; shed; _ } ->
          check "stats_ok carries the negotiated wire version" 1 wire;
          check "server-side bytes_in = client bytes sent"
            (Client.bytes_sent client) bytes_in;
          check "server-side bytes_out = client bytes received"
            received_before bytes_out;
          check "shed surfaced in stats" shed_jobs shed
      | f -> Alcotest.failf "unexpected stats reply %s" (Wire.encode f));
      let doc =
        match expect_ok (Client.call client (Wire.Metrics { slow = 0 })) with
        | Wire.Metrics_ok { doc; slow } ->
            check_string "no slow entries requested" "" slow;
            doc
        | f -> Alcotest.failf "unexpected metrics reply %s" (Wire.encode f)
      in
      let fields = Json.parse_fields doc in
      let g name = Json.opt_int_field fields name ~default:0 in
      (* Transcript so far: hello open feed feed step stats stats. The
         in-flight metrics request is recorded only after its reply. *)
      check "requests_total" 7 (g "requests_total");
      check "hello counted" 1 (g "requests_hello");
      check "opens counted" 1 (g "requests_open");
      check "feeds counted" 2 (g "requests_feed");
      check "steps counted" 1 (g "requests_step");
      check "stats counted (the error too)" 2 (g "requests_stats");
      check "metrics not yet counted mid-flight" 0 (g "requests_metrics");
      check "errors_total" 1 (g "errors_total");
      check "malformed_total" 0 (g "malformed_total");
      check "per-kind counters sum to the total" (g "requests_total")
        (Array.fold_left
           (fun acc k -> acc + g ("requests_" ^ k))
           0 Metrics.kinds);
      check "per-kind latency histograms cover every request"
        (g "requests_total")
        (Array.fold_left
           (fun acc k -> acc + g ("req_latency_us_" ^ k ^ "_count"))
           0 Metrics.kinds);
      check "shed jobs reconcile" shed_jobs (g "shed_jobs_total");
      check "rounds reconcile" 3 (g "rounds_total");
      check "sessions_open gauge" 1 (g "sessions_open");
      check "session shed gauge agrees" shed_jobs (g "sessions_shed_jobs");
      (* The second look sees the first metrics request counted. *)
      (match expect_ok (Client.call client (Wire.Metrics { slow = 0 })) with
      | Wire.Metrics_ok { doc; _ } ->
          check "first metrics request counted" 1
            (Json.opt_int_field (Json.parse_fields doc) "requests_metrics"
               ~default:0)
      | f -> Alcotest.failf "unexpected metrics reply %s" (Wire.encode f));
      Client.close client)

(* A 1 µs threshold makes essentially every request slow: entries show
   up newest first, parse as flat JSON, respect the ring capacity and
   the per-request cap. *)
let test_metrics_slow_log () =
  let dir = Filename.temp_file "rrs_slow" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let address = Server.Unix_socket (Filename.concat dir "sock") in
  let config =
    { (Server.default_config address) with domains = 2;
      slow_threshold_us = 1; slow_log = 4 }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop ~drain:false server))
    (fun () ->
      let client = Client.connect address in
      ignore (expect_ok (Client.call client (open_frame_for "slow")));
      for _ = 1 to 6 do
        ignore
          (expect_ok
             (Client.call client
                (Wire.Feed { session = "slow"; colors = [| 0 |]; counts = [| 1 |]; decl = None })));
        ignore
          (expect_ok
             (Client.call client (Wire.Step { session = "slow"; rounds = 1 })))
      done;
      (match expect_ok (Client.call client (Wire.Metrics { slow = 10 })) with
      | Wire.Metrics_ok { doc; slow } ->
          check_bool "slow_total counted" true
            (Json.opt_int_field (Json.parse_fields doc) "slow_total" ~default:0
             > 0);
          check_bool "slow log non-empty" true (slow <> "");
          let lines = String.split_on_char '\n' slow in
          check_bool "ring capacity bounds the log" true
            (List.length lines <= 4);
          let ats =
            List.map
              (fun line ->
                let f = Json.parse_fields line in
                check_bool "latency at or over the threshold" true
                  (Json.int_field f "latency_us" >= 1);
                check_bool "kind name is known" true
                  (Array.exists (( = ) (Json.str_field f "type")) Metrics.kinds);
                Json.int_field f "at_us")
              lines
          in
          check_bool "newest first" true
            (List.sort (fun a b -> compare b a) ats = ats)
      | f -> Alcotest.failf "unexpected metrics reply %s" (Wire.encode f));
      (* slow=0 asks for no entries even though some were recorded. *)
      (match expect_ok (Client.call client (Wire.Metrics { slow = 0 })) with
      | Wire.Metrics_ok { slow; _ } -> check_string "slow=0 elides" "" slow
      | f -> Alcotest.failf "unexpected metrics reply %s" (Wire.encode f));
      Client.close client)

(* The Prometheus rendering, off a hand-fed metrics plane: labeled
   families, cumulative le-buckets, merged across worker slots. *)
let test_exposition_render () =
  let m = Metrics.create ~workers:2 () in
  let span = Metrics.span () in
  let record ~worker kind =
    Metrics.reset_span span;
    span.Metrics.s_kind <- kind;
    span.Metrics.s_handle_us <- 5;
    span.Metrics.s_write_us <- 2;
    span.Metrics.s_bytes_in <- 10;
    span.Metrics.s_bytes_out <- 20;
    Metrics.record m ~worker span
  in
  (* feed on both workers, step on one: the render must merge slots. *)
  record ~worker:0 2;
  record ~worker:1 2;
  record ~worker:1 3;
  let text = Exposition.render (Metrics.merged m) in
  let expect needle =
    check_bool (Printf.sprintf "exposition contains %S" needle) true
      (contains ~needle text)
  in
  expect "# TYPE rrs_requests counter";
  expect "rrs_requests{type=\"feed\"} 2";
  expect "rrs_requests{type=\"step\"} 1";
  expect "rrs_requests_total 3";
  (* latency 5+2=7 µs: cumulative zero through le=4, both feeds by le=8 *)
  expect "rrs_req_latency_us_bucket{type=\"feed\",le=\"4\"} 0";
  expect "rrs_req_latency_us_bucket{type=\"feed\",le=\"8\"} 2";
  expect "rrs_req_latency_us_bucket{type=\"feed\",le=\"+Inf\"} 2";
  expect "rrs_req_latency_us_sum{type=\"feed\"} 14";
  expect "rrs_req_latency_us_count{type=\"feed\"} 2";
  expect "# TYPE rrs_lock_wait_us histogram";
  expect "rrs_lock_wait_us_count 3";
  expect "rrs_bytes_in_sum 30"

(* The --metrics listener end to end: drive a session over the wire,
   then scrape the HTTP endpoint and find the series. *)
let test_metrics_http_endpoint () =
  let dir = Filename.temp_file "rrs_http" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let address = Server.Unix_socket (Filename.concat dir "sock") in
  let config =
    { (Server.default_config address) with domains = 2;
      metrics = Some (Server.Tcp ("127.0.0.1", 0)) }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop ~drain:false server))
    (fun () ->
      let client = Client.connect address in
      ignore (expect_ok (Client.call client (open_frame_for "http")));
      feed_step client "http" [| 0 |] [| 2 |];
      (* A metrics round trip synchronizes: every earlier span is
         recorded once its reply (and thus this one) is out. *)
      ignore (expect_ok (Client.call client (Wire.Metrics { slow = 0 })));
      let port =
        match Server.bound_metrics_port server with
        | Some port -> port
        | None -> Alcotest.fail "no bound metrics port"
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let out = Unix.out_channel_of_descr fd in
      output_string out "GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n";
      flush out;
      let response = In_channel.input_all (Unix.in_channel_of_descr fd) in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let expect needle =
        check_bool (Printf.sprintf "scrape contains %S" needle) true
          (contains ~needle response)
      in
      expect "HTTP/1.1 200 OK";
      expect "Content-Type: text/plain; version=0.0.4";
      expect "# TYPE rrs_requests counter";
      expect "rrs_requests{type=\"open\"} 1";
      expect "rrs_requests{type=\"feed\"} 1";
      expect "rrs_requests{type=\"step\"} 1";
      expect "rrs_sessions_open 1";
      expect "le=\"+Inf\"";
      Client.close client)

(* ---- admission gate, live ---- *)

(* 2 colors at 1/2 job/round: sized n = 2, supply 2000 mj/r. *)
let admission_spec () =
  match
    Rrs_workload.Demand.make ~name:"gate" ~n:2 ~delta:2 ~speed:1
      (List.init 2 (fun color ->
           { Rrs_workload.Demand.color; bound = 8; rate_num = 1; rate_den = 2;
             burst = 0 }))
  with
  | Ok spec -> spec
  | Error m -> Alcotest.failf "admission spec: %s" m

let with_admission_server ~mode f =
  let dir = Filename.temp_file "rrs_adm" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let address = Server.Unix_socket (Filename.concat dir "sock") in
  let config =
    { (Server.default_config address) with domains = 2;
      snap_dir = Some (Filename.concat dir "snaps");
      admission = Some (admission_spec ()); admission_mode = mode }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop ~drain:false server))
    (fun () -> f ~address)

let declared_open ?(policy = "seq-edf") ?(n = 2) session decl =
  Wire.Open
    { session; policy; delta = 2; bounds = [| 8; 8 |]; n; speed = 1;
      horizon = 0; queue_limit = 0; decl = Some decl }

let decl ?(bursts = [||]) rates den =
  { Wire.d_rates = rates; d_den = den; d_bursts = bursts }

let admission_gauge client name =
  match expect_ok (Client.call client (Wire.Metrics { slow = 0 })) with
  | Wire.Metrics_ok { doc; _ } ->
      Json.opt_int_field (Json.parse_fields doc) name ~default:(-1)
  | f -> Alcotest.failf "metrics reply %s" (Wire.encode f)

let test_admission_enforce () =
  with_admission_server ~mode:Rrs_server.Admission.Enforce (fun ~address ->
      let client = Client.connect address in
      check "supply gauge is n*speed*1000" 2000
        (admission_gauge client "admission_supply_mjpr");
      (* An honest declaration within its own n and the budget. *)
      (match
         expect_ok (Client.call client (declared_open "fit" (decl [| 1; 1 |] 4)))
       with
      | Wire.Opened _ -> ()
      | f -> Alcotest.failf "fit open: %s" (Wire.encode f));
      check "demand gauge carries the reservation" 500
        (admission_gauge client "admission_demand_mjpr");
      (* Infeasible for its own n = 1 (two colors at full rate need two
         resources): a typed reject naming a binding color, no state. *)
      (match
         Client.call client (declared_open ~n:1 "infeasible" (decl [| 1; 1 |] 1))
       with
      | Ok (Wire.Admission_reject { session = "infeasible"; color; _ }) ->
          check_bool "binding color named" true (color >= 0)
      | Ok f -> Alcotest.failf "infeasible open: %s" (Wire.encode f)
      | Error m -> Alcotest.fail m);
      Client.send client (Wire.Stats { session = "infeasible" });
      expect_error client "rejected open left no session";
      (* A big-but-feasible declaration exhausts the budget... *)
      (match
         expect_ok (Client.call client (declared_open "big" (decl [| 3; 3 |] 4)))
       with
      | Wire.Opened _ -> ()
      | f -> Alcotest.failf "big open: %s" (Wire.encode f));
      check "budget exhausted" 0 (admission_gauge client "admission_headroom_mjpr");
      (* ...so one more per-session-feasible open rejects on the
         aggregate (color -1). *)
      (match Client.call client (declared_open "extra" (decl [| 1; 1 |] 4)) with
      | Ok (Wire.Admission_reject { color = -1; demand; supply; _ }) ->
          check "supply in the reject" 2000 supply;
          check_bool "demand over supply" true (demand > supply)
      | Ok f -> Alcotest.failf "extra open: %s" (Wire.encode f)
      | Error m -> Alcotest.fail m);
      (* Close releases the reservation: the same open now fits. *)
      (match expect_ok (Client.call client (Wire.Close { session = "big" })) with
      | Wire.Closed _ -> ()
      | f -> Alcotest.failf "close big: %s" (Wire.encode f));
      (match
         expect_ok (Client.call client (declared_open "extra" (decl [| 1; 1 |] 4)))
       with
      | Wire.Opened _ -> ()
      | f -> Alcotest.failf "extra open after release: %s" (Wire.encode f));
      check_bool "rejects counted" true
        (admission_gauge client "admission_rejected_total" >= 2);
      Client.close client)

let test_admission_policing_conservation () =
  with_admission_server ~mode:Rrs_server.Admission.Enforce (fun ~address ->
      let client = Client.connect address in
      (match
         expect_ok (Client.call client (declared_open "pol" (decl [| 1; 1 |] 4)))
       with
      | Wire.Opened _ -> ()
      | f -> Alcotest.failf "open: %s" (Wire.encode f));
      (* Allowance through round 0 at rate 1/4, burst 0: zero jobs — the
         feed is over the declared envelope and is shed, not enqueued. *)
      (match
         Client.call client
           (Wire.Feed { session = "pol"; colors = [| 0 |]; counts = [| 3 |]; decl = None })
       with
      | Ok (Wire.Admission_reject { session = "pol"; color = 0; _ }) -> ()
      | Ok f -> Alcotest.failf "over-envelope feed: %s" (Wire.encode f)
      | Error m -> Alcotest.fail m);
      (match expect_ok (Client.call client (Wire.Stats { session = "pol" })) with
      | Wire.Stats_ok { fed; accepted; shed; _ } ->
          check "policed jobs counted as offered" 3 fed;
          check "nothing enqueued" 0 accepted;
          check "conservation: fed = accepted + shed" fed (accepted + shed)
      | f -> Alcotest.failf "stats: %s" (Wire.encode f));
      check "policed jobs gauge" 3 (admission_gauge client "admission_policed_jobs");
      (* A feed may re-declare a larger envelope — the same jobs are
         then in budget and accepted. *)
      (match
         Client.call client
           (Wire.Feed
              { session = "pol"; colors = [| 0 |]; counts = [| 1 |];
                decl = Some (decl ~bursts:[| 4; 0 |] [| 1; 1 |] 4) })
       with
      | Ok (Wire.Fed { accepted; _ }) -> check "accepted after re-decl" 1 accepted
      | Ok f -> Alcotest.failf "re-declared feed: %s" (Wire.encode f)
      | Error m -> Alcotest.fail m);
      Client.close client)

let test_admission_warn_admits () =
  with_admission_server ~mode:Rrs_server.Admission.Warn (fun ~address ->
      let client = Client.connect address in
      (* The same infeasible declaration the enforcing gate refuses is
         admitted under warn... *)
      (match
         expect_ok
           (Client.call client (declared_open ~n:1 "loud" (decl [| 1; 1 |] 1)))
       with
      | Wire.Opened _ -> ()
      | f -> Alcotest.failf "warn open: %s" (Wire.encode f));
      (* ...and its feeds are not policed. *)
      (match
         Client.call client
           (Wire.Feed { session = "loud"; colors = [| 0 |]; counts = [| 5 |]; decl = None })
       with
      | Ok (Wire.Fed { accepted; _ }) -> check "unpoliced" 5 accepted
      | Ok f -> Alcotest.failf "warn feed: %s" (Wire.encode f)
      | Error m -> Alcotest.fail m);
      check_bool "reservation still tracked" true
        (admission_gauge client "admission_demand_mjpr" >= 2000);
      Client.close client)

let test_admission_survives_restart () =
  let dir = Filename.temp_file "rrs_adm_restart" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let address = Server.Unix_socket (Filename.concat dir "sock") in
  let config =
    { (Server.default_config address) with domains = 2;
      snap_dir = Some (Filename.concat dir "snaps");
      admission = Some (admission_spec ());
      admission_mode = Rrs_server.Admission.Enforce }
  in
  let server = Server.start config in
  let client = Client.connect address in
  (match Client.negotiate client ~wire:2 with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match
     expect_ok (Client.call client (declared_open "keeper" (decl [| 3; 3 |] 4)))
   with
  | Wire.Opened _ -> ()
  | f -> Alcotest.failf "open: %s" (Wire.encode f));
  Client.close client;
  (* Drain snapshots the declared session; the restarted gate must
     re-admit it, or the budget would silently double-sell. *)
  ignore (Server.stop ~drain:true server);
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop ~drain:false server))
    (fun () ->
      let client = Client.connect address in
      check "restored reservation still charged" 1500
        (admission_gauge client "admission_demand_mjpr");
      (* The envelope survives too: round 0 allowance at 3/4 is 0. *)
      (match
         Client.call client
           (Wire.Feed { session = "keeper"; colors = [| 1 |]; counts = [| 2 |]; decl = None })
       with
      | Ok (Wire.Admission_reject _) -> ()
      | Ok f -> Alcotest.failf "restored envelope not policed: %s" (Wire.encode f)
      | Error m -> Alcotest.fail m);
      (* And the remaining headroom is honest: 600 > 500 left. *)
      (match Client.call client (declared_open "over" (decl [| 3; 3 |] 10)) with
      | Ok (Wire.Admission_reject { color = -1; _ }) -> ()
      | Ok f -> Alcotest.failf "over-budget open after restart: %s" (Wire.encode f)
      | Error m -> Alcotest.fail m);
      Client.close client)

(* ---- endpoint byte counters survive reconnects ---- *)

let test_endpoint_bytes_accumulate () =
  with_server (fun ~address ~snap_dir:_ ->
      let endpoint = Client.Endpoint.create ~retry:Client.no_retry address in
      (match Client.Endpoint.call endpoint (open_frame_for "bytes") with
      | Ok (Wire.Opened _) -> ()
      | Ok f -> Alcotest.failf "open: %s" (Wire.encode f)
      | Error m -> Alcotest.fail m);
      let sent_before = Client.Endpoint.bytes_sent endpoint in
      let received_before = Client.Endpoint.bytes_received endpoint in
      check_bool "bytes counted" true (sent_before > 0 && received_before > 0);
      (* Drop the cached connection: the next call reconnects, and the
         totals keep accumulating instead of resetting with the conn. *)
      Client.Endpoint.drop endpoint;
      (match Client.Endpoint.call endpoint (Wire.Stats { session = "bytes" }) with
      | Ok (Wire.Stats_ok _) -> ()
      | Ok f -> Alcotest.failf "stats: %s" (Wire.encode f)
      | Error m -> Alcotest.fail m);
      check_bool "sent total grows across the reconnect" true
        (Client.Endpoint.bytes_sent endpoint > sent_before);
      check_bool "received total grows across the reconnect" true
        (Client.Endpoint.bytes_received endpoint > received_before);
      Client.Endpoint.close endpoint)

(* ---- top view: restart detection and rate clamping ---- *)

let top_sample at fields =
  { Rrs_server.Top_view.at;
    fields = List.map (fun (k, v) -> (k, Json.Vint v)) fields }

let test_top_view_rates () =
  let module Top = Rrs_server.Top_view in
  let previous =
    top_sample 100.0 [ ("uptime_s", 50); ("requests_total", 1000) ]
  in
  let healthy =
    top_sample 110.0 [ ("uptime_s", 60); ("requests_total", 1200) ]
  in
  check_bool "no baseline renders -/s" true
    (String.trim (Top.rate ~previous:None healthy "requests_total") = "-/s");
  check_string "steady rate" "20.0/s"
    (String.trim (Top.rate ~previous:(Some previous) healthy "requests_total"));
  (* Merged multi-worker counters can read slightly backwards within one
     server life: clamp to zero, never a negative rate. ([requests_total]
     itself shrinking reads as a restart — skew another counter.) *)
  let previous_rounds =
    top_sample 100.0
      [ ("uptime_s", 50); ("requests_total", 1000); ("rounds_total", 400) ]
  in
  let skewed =
    top_sample 110.0
      [ ("uptime_s", 60); ("requests_total", 1200); ("rounds_total", 395) ]
  in
  check_string "skew clamps to zero" "0.0/s"
    (String.trim (Top.rate ~previous:(Some previous_rounds) skewed "rounds_total"));
  (* A restart resets the counters: flagged, and rates hold at -/s
     rather than going hugely negative. *)
  let rebooted =
    top_sample 120.0 [ ("uptime_s", 3); ("requests_total", 40) ]
  in
  check_bool "restart detected" true (Top.restarted ~previous rebooted);
  check_bool "healthy poll is not a restart" true
    (not (Top.restarted ~previous healthy));
  check_bool "restart renders -/s" true
    (String.trim (Top.rate ~previous:(Some previous) rebooted "requests_total") = "-/s");
  let rendered = Top.render ~previous:(Some previous) rebooted ~slow:[] in
  check_bool "restart marker in the header" true
    (contains ~needle:"[server restarted]" rendered);
  check_bool "no marker on a healthy poll" true
    (not
       (contains ~needle:"[server restarted]"
          (Top.render ~previous:(Some previous) healthy ~slow:[])))

let test_top_view_admission_line () =
  let module Top = Rrs_server.Top_view in
  let gated =
    top_sample 10.0
      [ ("uptime_s", 10); ("requests_total", 5);
        ("admission_supply_mjpr", 2000); ("admission_demand_mjpr", 1500);
        ("admission_headroom_mjpr", 500); ("admission_sessions", 3);
        ("admission_rejected_total", 2); ("admission_policed_jobs", 7) ]
  in
  let rendered = Top.render ~previous:None gated ~slow:[] in
  check_bool "admission line present" true (contains ~needle:"admission" rendered);
  check_bool "supply shown" true (contains ~needle:"2000" rendered);
  check_bool "headroom shown" true (contains ~needle:"500" rendered);
  let ungated = top_sample 10.0 [ ("uptime_s", 10); ("requests_total", 5) ] in
  check_bool "no admission line without the gauges" true
    (not (contains ~needle:"admission" (Top.render ~previous:None ungated ~slow:[])))

let prop = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "server.wire",
      [
        prop prop_wire_roundtrip;
        prop prop_wire_framed_roundtrip;
        Alcotest.test_case "malformed lines stay line-synced" `Quick
          test_wire_malformed_lines;
        Alcotest.test_case "over-long frames are unreceivable" `Quick
          test_wire_overlong_frame_unreceivable;
      ] );
    ( "server.wire2",
      [
        prop prop_wire2_roundtrip;
        prop prop_wire2_framed_roundtrip;
        Alcotest.test_case "garbage resync (newline + magic)" `Quick
          test_wire2_garbage_resync;
        Alcotest.test_case "frame larger than the reader chunk" `Quick
          test_wire2_large_frame;
        Alcotest.test_case "forward compatibility, both framings" `Quick
          test_wire_forward_compat;
      ] );
    ( "server.session",
      [
        Alcotest.test_case "shed + conservation" `Quick
          test_session_shed_and_conservation;
        Alcotest.test_case "close/release idempotent trace" `Quick
          test_session_close_idempotent_trace;
        Alcotest.test_case "save failure removes the temp file" `Quick
          test_session_save_failure_cleans_tmp;
        Alcotest.test_case "restore rejects mixed snapshot versions" `Quick
          test_restore_rejects_mixed_versions;
      ] );
    ( "server.stepper",
      [
        Alcotest.test_case "engine = stepper loop (byte-identical)" `Quick
          test_engine_stepper_identity;
        Alcotest.test_case "multi-feed round = combined feed" `Quick
          test_stepper_multi_feed_order;
        Alcotest.test_case "snapshot/restore mid-run" `Quick
          test_snapshot_restore_midrun;
        Alcotest.test_case "restore rejects tampering" `Quick
          test_restore_rejects_tampering;
        prop prop_snapshot_restore;
        prop prop_snapshot_restore_v2;
        Alcotest.test_case "checkpointing does not perturb the stream" `Quick
          test_checkpointing_does_not_perturb_stream;
        Alcotest.test_case "checkpoints bound history and snapshot size"
          `Quick test_checkpoint_compaction_bound;
        Alcotest.test_case "policy blob serialize/deserialize fixpoint" `Quick
          test_policy_blob_fixpoint;
      ] );
    ( "server.live",
      [
        Alcotest.test_case "survives malformed corpus" `Quick
          test_server_survives_malformed;
        Alcotest.test_case "drain + restore continuity" `Quick
          test_server_drain_restore;
        Alcotest.test_case "restore validates embedded names" `Quick
          test_restore_validates_names;
        Alcotest.test_case "unresolvable hosts fail cleanly" `Quick
          test_unknown_host;
        Alcotest.test_case "open constructs outside the manager lock" `Quick
          test_open_constructs_outside_lock;
        Alcotest.test_case "/2 negotiation + garbage resync" `Quick
          test_wire2_live_negotiation;
        Alcotest.test_case "max_wire=1 pins the server to /1" `Quick
          test_server_pinned_to_wire1;
        Alcotest.test_case "/1 and /2 replies are identical" `Quick
          test_wire_equality_across_framings;
        Alcotest.test_case "oversize inline snapshot answers an error" `Quick
          test_oversize_inline_snapshot_reply;
        Alcotest.test_case "accept survives signal churn" `Quick
          test_accept_survives_signal_churn;
        Alcotest.test_case "endpoint bytes accumulate across reconnects"
          `Quick test_endpoint_bytes_accumulate;
      ] );
    ( "server.admission",
      [
        Alcotest.test_case "enforce: typed rejects, budget, release" `Quick
          test_admission_enforce;
        Alcotest.test_case "policing preserves conservation" `Quick
          test_admission_policing_conservation;
        Alcotest.test_case "warn admits and does not police" `Quick
          test_admission_warn_admits;
        Alcotest.test_case "gate state survives drain + restart" `Quick
          test_admission_survives_restart;
      ] );
    ( "server.top",
      [
        Alcotest.test_case "rates: baseline, skew clamp, restart" `Quick
          test_top_view_rates;
        Alcotest.test_case "admission line when gauges present" `Quick
          test_top_view_admission_line;
      ] );
    ( "server.observability",
      [
        Alcotest.test_case "metrics reconcile with the client transcript"
          `Quick test_metrics_reconciliation;
        Alcotest.test_case "slow-request log over the wire" `Quick
          test_metrics_slow_log;
        Alcotest.test_case "prometheus exposition rendering" `Quick
          test_exposition_render;
        Alcotest.test_case "--metrics http endpoint serves a scrape" `Quick
          test_metrics_http_endpoint;
      ] );
  ]
