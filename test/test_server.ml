(* Serving-layer tests: rrs-wire/1 codec round trips (every frame type,
   qcheck), channel framing, a malformed-input corpus against a live
   server (the connection and the sessions behind it must survive),
   admission control (shed accounting + conservation), Engine-vs-Stepper
   stream identity, and snapshot/restore equivalence (qcheck: a run
   interrupted at a random round and restored finishes with the same
   ledger, assignment and byte-identical event stream as the
   uninterrupted run). *)

module Instance = Rrs_sim.Instance
module Engine = Rrs_sim.Engine
module Ledger = Rrs_sim.Ledger
module Stepper = Rrs_sim.Stepper
module Event_sink = Rrs_sim.Event_sink
module Wire = Rrs_server.Wire
module Session = Rrs_server.Session
module Server = Rrs_server.Server
module Client = Rrs_server.Client
module H = Test_helpers

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let policy : (module Rrs_sim.Policy.POLICY) = (module Rrs_core.Policy_lru_edf)

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

(* ---- wire codec: qcheck round trip over every frame type ---- *)

let gen_name =
  (* Session/policy strings, including characters the escaper must
     handle. *)
  QCheck2.Gen.(
    oneof
      [
        string_size ~gen:(char_range 'a' 'z') (int_range 1 12);
        return "s \"quoted\" \\ back";
        return "newline\nand\ttab";
        return "";
      ])

let gen_ints =
  QCheck2.Gen.(array_size (int_range 0 6) (int_range 0 1000))

let gen_opt_name = QCheck2.Gen.option gen_name

let gen_frame : Wire.frame QCheck2.Gen.t =
  QCheck2.Gen.(
    let* session = gen_name in
    let int = int_range 0 100_000 in
    oneof
      [
        (let* v = gen_name in
         return (Wire.Hello { client_version = v }));
        (let* policy = gen_name in
         let* delta = int and* n = int and* speed = int and* horizon = int in
         let* queue_limit = int and* bounds = gen_ints in
         return
           (Wire.Open
              { session; policy; delta; bounds; n; speed; horizon; queue_limit }));
        (let* colors = gen_ints and* counts = gen_ints in
         return (Wire.Feed { session; colors; counts }));
        (let* rounds = int in
         return (Wire.Step { session; rounds }));
        return (Wire.Stats { session });
        (let* path = gen_opt_name in
         return (Wire.Snapshot { session; path }));
        return (Wire.Close { session });
        (let* v = gen_name in
         return (Wire.Hello_ok { server_version = v }));
        (let* round = int in
         return (Wire.Opened { session; round }));
        (let* accepted = int and* buffered = int in
         return (Wire.Fed { session; accepted; buffered }));
        (let* shed = int and* buffered = int and* limit = int in
         return (Wire.Shed { session; shed; buffered; limit }));
        (let* round = int and* pending = int and* cost = int in
         let* reconfigs = int and* drops = int and* execs = int in
         return
           (Wire.Stepped { session; round; pending; cost; reconfigs; drops; execs }));
        (let* round = int and* pending = int and* buffered = int in
         let* fed = int and* accepted = int and* shed = int in
         let* execs = int and* drops = int and* reconfigs = int in
         let* failed = int and* cost = int in
         return
           (Wire.Stats_ok
              { session; round; pending; buffered; fed; accepted; shed; execs;
                drops; reconfigs; failed; cost }));
        (let* path = gen_opt_name and* doc = gen_opt_name in
         return (Wire.Snapshotted { session; path; doc }));
        (let* cost = int in
         return (Wire.Closed { session; cost }));
        (let* message = gen_name in
         return (Wire.Error_frame { message }));
      ])

let prop_wire_roundtrip =
  QCheck2.Test.make ~name:"wire: decode (encode frame) = frame" ~count:500
    gen_frame (fun frame -> Wire.decode (Wire.encode frame) = Ok frame)

let prop_wire_framed_roundtrip =
  QCheck2.Test.make ~name:"wire: read (write frame) = frame through a channel"
    ~count:100 gen_frame (fun frame ->
      let path = Filename.temp_file "rrs_wire" ".txt" in
      let out = open_out path in
      Wire.write out frame;
      close_out out;
      let input = open_in path in
      let result = Wire.read input in
      let eof = Wire.read input in
      close_in input;
      Sys.remove path;
      result = Wire.Frame frame && eof = Wire.Eof)

let test_wire_malformed_lines () =
  let path = Filename.temp_file "rrs_wire" ".txt" in
  let out = open_out path in
  output_string out "this is not a frame\n";
  output_string out "999 {\"type\":\"stats\",\"session\":\"s\"}\n";
  output_string out "{\"type\":\"stats\",\"session\":\"s\"}\n";
  output_string out "8 {\"a\":1}\n";
  output_string out
    (Wire.frame_line (Wire.encode (Wire.Stats { session = "s" })));
  close_out out;
  let input = open_in path in
  let malformed = function Wire.Malformed _ -> true | _ -> false in
  check_bool "garbage words" true (malformed (Wire.read input));
  check_bool "length mismatch" true (malformed (Wire.read input));
  check_bool "missing prefix" true (malformed (Wire.read input));
  check_bool "missing type" true (malformed (Wire.read input));
  check_bool "still synced: valid frame after garbage" true
    (Wire.read input = Wire.Frame (Wire.Stats { session = "s" }));
  check_bool "eof" true (Wire.read input = Wire.Eof);
  close_in input;
  Sys.remove path

(* ---- session admission control ---- *)

let session_config ?(name = "t") () =
  { Stepper.name; delta = 3; bounds = [| 2; 3; 4 |]; n = 4; speed = 1;
    horizon = 0 }

let test_session_shed_and_conservation () =
  let session =
    match
      Session.create ~name:"shed" ~policy:"dlru-edf" ~queue_limit:5
        (session_config ())
    with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  (match Session.feed session ~colors:[| 0; 1 |] ~counts:[| 2; 2 |] with
  | Ok (Session.Accepted { accepted; buffered }) ->
      check "accepted" 4 accepted;
      check "buffered" 4 buffered
  | Ok (Session.Shed_reply _) -> Alcotest.fail "unexpected shed"
  | Error m -> Alcotest.fail m);
  (* 4 buffered + 2 > 5: the whole request is shed, nothing enqueued. *)
  (match Session.feed session ~colors:[| 2 |] ~counts:[| 2 |] with
  | Ok (Session.Shed_reply { shed; buffered; limit }) ->
      check "shed jobs" 2 shed;
      check "buffered unchanged" 4 buffered;
      check "limit" 5 limit
  | Ok (Session.Accepted _) -> Alcotest.fail "expected shed"
  | Error m -> Alcotest.fail m);
  (* A 1-job feed still fits. *)
  (match Session.feed session ~colors:[| 2 |] ~counts:[| 1 |] with
  | Ok (Session.Accepted { buffered; _ }) -> check "refilled" 5 buffered
  | _ -> Alcotest.fail "expected accept");
  (* An invalid feed is rejected outright and is not counted as fed. *)
  (match Session.feed session ~colors:[| 9 |] ~counts:[| 1 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for unknown color");
  (match Session.step session ~rounds:6 with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let st = Session.stats session in
  check "fed = accepted + shed" st.Session.st_fed
    (st.Session.st_accepted + st.Session.st_shed);
  check "accepted conserved" st.Session.st_accepted
    (st.Session.st_execs + st.Session.st_drops + st.Session.st_pending
   + st.Session.st_buffered);
  check "shed total" 2 st.Session.st_shed;
  match Session.close session with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m

(* Losing a close/close or close/release race must not raise out of the
   loser: the trace channel is closed exactly once. *)
let test_session_close_idempotent_trace () =
  let dir = Filename.temp_file "rrs_sess" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let session =
    match
      Session.create ~name:"twice" ~policy:"dlru-edf" ~trace_dir:dir
        (session_config ~name:"twice" ())
    with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  (match Session.step session ~rounds:2 with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match Session.close session with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (* Second close: an Error reply (double finish), never an exception. *)
  (match Session.close session with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "second close must not succeed");
  (* Release after close: a no-op, never an exception. *)
  Session.release session

(* ---- engine over stepper: stream identity ---- *)

let trace_engine ~n instance =
  let path = Filename.temp_file "rrs_engine" ".jsonl" in
  let channel = open_out path in
  let result =
    Engine.run ~sink:(Event_sink.Jsonl channel) ~n ~policy instance
  in
  close_out channel;
  (path, result)

let trace_stepper ~n instance =
  let path = Filename.temp_file "rrs_stepper" ".jsonl" in
  let channel = open_out path in
  let stepper =
    Stepper.create ~sink:(Event_sink.Jsonl channel) ~policy
      { Stepper.name = instance.Instance.name;
        delta = instance.Instance.delta; bounds = instance.Instance.bounds;
        n; speed = 1; horizon = instance.Instance.horizon }
  in
  for round = 0 to instance.Instance.horizon - 1 do
    Stepper.feed stepper instance.Instance.requests.(round);
    Stepper.step stepper
  done;
  let result = Stepper.finish stepper in
  close_out channel;
  (path, result)

let test_engine_stepper_identity () =
  let instance =
    Rrs_workload.Random_workloads.uniform ~seed:42 ~colors:6 ~delta:4
      ~bound_log_range:(0, 3) ~horizon:48 ~load:0.9 ~rate_limited:true ()
  in
  let engine_path, engine_result = trace_engine ~n:6 instance in
  let stepper_path, stepper_result = trace_stepper ~n:6 instance in
  check "same cost"
    (Ledger.total_cost engine_result.Engine.ledger)
    (Ledger.total_cost stepper_result.Stepper.ledger);
  check_string "byte-identical streams" (read_file engine_path)
    (read_file stepper_path);
  Sys.remove engine_path;
  Sys.remove stepper_path

(* Several feeds within one round must equal the one combined feed —
   the chunked buffer flattens in fed order before normalization. *)
let test_stepper_multi_feed_order () =
  let config =
    { Stepper.name = "chunks"; delta = 2; bounds = [| 2; 3; 4 |]; n = 4;
      speed = 1; horizon = 0 }
  in
  let chunked = Stepper.create ~policy config in
  Stepper.feed chunked [ (2, 1) ];
  Stepper.feed chunked [ (0, 2); (1, 1) ];
  Stepper.feed chunked [ (2, 3) ];
  let combined = Stepper.create ~policy config in
  Stepper.feed combined [ (2, 1); (0, 2); (1, 1); (2, 3) ];
  check "buffered jobs agree" (Stepper.buffered_jobs combined)
    (Stepper.buffered_jobs chunked);
  check_string "identical buffered snapshot line"
    (Stepper.snapshot combined) (Stepper.snapshot chunked);
  Stepper.step chunked;
  Stepper.step combined;
  check_string "identical state" (Stepper.snapshot combined)
    (Stepper.snapshot chunked);
  ignore (Stepper.finish chunked);
  ignore (Stepper.finish combined)

(* ---- snapshot / restore ---- *)

(* Interrupt a streamed run at [cut], restore from the snapshot into a
   fresh sink, finish both; ledgers, assignments and the full event
   streams must agree. *)
let run_with_interruption ~n ~cut instance =
  let full_path, full = trace_engine ~n instance in
  let part_path = Filename.temp_file "rrs_part" ".jsonl" in
  let channel = open_out part_path in
  let config =
    { Stepper.name = instance.Instance.name; delta = instance.Instance.delta;
      bounds = instance.Instance.bounds; n; speed = 1;
      horizon = instance.Instance.horizon }
  in
  let stepper =
    Stepper.create ~sink:(Event_sink.Jsonl channel) ~policy config
  in
  for round = 0 to cut - 1 do
    Stepper.feed stepper instance.Instance.requests.(round);
    Stepper.step stepper
  done;
  let snapshot = Stepper.snapshot stepper in
  (* The interrupted process dies here: its stream is abandoned. *)
  close_out channel;
  Sys.remove part_path;
  let resumed_path = Filename.temp_file "rrs_resumed" ".jsonl" in
  let channel = open_out resumed_path in
  let resumed =
    match
      Stepper.restore ~sink:(Event_sink.Jsonl channel) ~policy snapshot
    with
    | Ok stepper -> stepper
    | Error message -> Alcotest.failf "restore: %s" message
  in
  for round = cut to instance.Instance.horizon - 1 do
    Stepper.feed resumed instance.Instance.requests.(round);
    Stepper.step resumed
  done;
  let result = Stepper.finish resumed in
  close_out channel;
  let outcome =
    ( Ledger.total_cost full.Engine.ledger,
      Ledger.total_cost result.Stepper.ledger,
      full.Engine.final_assignment = result.Stepper.final_assignment,
      read_file full_path = read_file resumed_path )
  in
  Sys.remove full_path;
  Sys.remove resumed_path;
  outcome

let test_snapshot_restore_midrun () =
  let instance =
    Rrs_workload.Random_workloads.uniform ~seed:7 ~colors:5 ~delta:3
      ~bound_log_range:(0, 3) ~horizon:40 ~load:1.0 ~rate_limited:true ()
  in
  let full_cost, resumed_cost, same_assignment, same_stream =
    run_with_interruption ~n:5 ~cut:17 instance
  in
  check "same total cost" full_cost resumed_cost;
  check_bool "same final assignment" true same_assignment;
  check_bool "byte-identical stream after restore" true same_stream

let prop_snapshot_restore =
  QCheck2.Test.make
    ~name:"snapshot at a random round + restore = uninterrupted run"
    ~count:40
    QCheck2.Gen.(pair H.gen_rate_limited (int_bound 1_000_000))
    (fun (instance, cut_seed) ->
      let horizon = instance.Instance.horizon in
      QCheck2.assume (horizon > 1);
      let cut = 1 + (cut_seed mod (horizon - 1)) in
      let full_cost, resumed_cost, same_assignment, same_stream =
        run_with_interruption ~n:4 ~cut instance
      in
      full_cost = resumed_cost && same_assignment && same_stream)

let test_restore_rejects_tampering () =
  let stepper = Stepper.create ~policy (session_config ~name:"tamper" ())
  in
  Stepper.feed stepper [ (0, 2); (1, 1) ];
  Stepper.step stepper;
  Stepper.step stepper;
  let doc = Stepper.snapshot stepper in
  (* Corrupt the materialized counters: replay must detect the mismatch. *)
  let tampered =
    String.concat "\n"
      (List.map
         (fun line ->
           if String.length line > 24
              && String.sub line 0 24 = "{\"type\":\"check_counters\"" then
             "{\"type\":\"check_counters\",\"reconfigs\":9,\"failed\":0,\
              \"drops\":9,\"execs\":9,\"cost\":99}"
           else line)
         (String.split_on_char '\n' doc))
  in
  (match Stepper.restore ~policy tampered with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered snapshot must not restore");
  match Stepper.restore ~policy "not a snapshot" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not restore"

(* ---- live server: malformed corpus + session survival ---- *)

let with_server f =
  let dir = Filename.temp_file "rrs_srv" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let address = Server.Unix_socket (Filename.concat dir "sock") in
  let snap_dir = Filename.concat dir "snaps" in
  let config =
    { (Server.default_config address) with domains = 2;
      snap_dir = Some snap_dir }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop ~drain:false server))
    (fun () -> f ~address ~snap_dir)

let expect_ok = function
  | Ok (Wire.Error_frame { message }) -> Alcotest.failf "server error: %s" message
  | Ok frame -> frame
  | Error message -> Alcotest.fail message

let expect_error client = function
  | label -> (
      match Client.read_reply client with
      | Ok (Wire.Error_frame _) -> ()
      | Ok frame ->
          Alcotest.failf "%s: expected error, got %s" label (Wire.encode frame)
      | Error message -> Alcotest.failf "%s: %s" label message)

let malformed_corpus =
  [
    "complete garbage";
    "12";
    "";
    "-3 {}";
    "7 {\"typ\"";
    "999 {\"type\":\"stats\",\"session\":\"live\"}"; (* truncated frame *)
    "17 {\"type\":\"stats\"}"; (* missing required field *)
    "13 {\"type\":\"nope\"}"; (* unknown type *)
    "44 {\"type\":\"open\",\"session\":\"x\",\"policy\":\"dlru\"}";
    (* missing numeric fields *)
    "24 {\"type\":\"hello\",\"version\":1}"; (* wrong field type *)
  ]

let test_server_survives_malformed () =
  with_server (fun ~address ~snap_dir ->
      let client = Client.connect address in
      (* Wrong version: an [error] reply, not a disconnect. *)
      (match Client.call client (Wire.Hello { client_version = "rrs-wire/0" }) with
      | Ok (Wire.Error_frame _) -> ()
      | other ->
          Alcotest.failf "wrong version accepted: %s"
            (match other with Ok f -> Wire.encode f | Error e -> e));
      (match
         expect_ok
           (Client.call client (Wire.Hello { client_version = Wire.version }))
       with
      | Wire.Hello_ok _ -> ()
      | f -> Alcotest.failf "unexpected hello reply %s" (Wire.encode f));
      (match
         expect_ok
           (Client.call client
              (Wire.Open
                 { session = "live"; policy = "dlru"; delta = 2;
                   bounds = [| 2; 3 |]; n = 3; speed = 1; horizon = 0;
                   queue_limit = 0 }))
       with
      | Wire.Opened _ -> ()
      | f -> Alcotest.failf "unexpected open reply %s" (Wire.encode f));
      ignore
        (expect_ok
           (Client.call client
              (Wire.Feed { session = "live"; colors = [| 0 |]; counts = [| 3 |] })));
      ignore (expect_ok (Client.call client (Wire.Step { session = "live"; rounds = 1 })));
      let stats_before =
        match expect_ok (Client.call client (Wire.Stats { session = "live" })) with
        | Wire.Stats_ok _ as s -> s
        | f -> Alcotest.failf "unexpected stats reply %s" (Wire.encode f)
      in
      (* The whole corpus: every line answered with [error], connection
         and session intact. *)
      List.iter
        (fun line ->
          Client.send_raw client line;
          expect_error client line)
        malformed_corpus;
      (* Protocol-level misuse (well-formed frames) also answers error. *)
      Client.send client (Wire.Stats { session = "no-such" });
      expect_error client "unknown session";
      Client.send client (Wire.Opened { session = "x"; round = 0 });
      expect_error client "reply frame as request";
      Client.send client
        (Wire.Open
           { session = "../evil"; policy = "dlru"; delta = 2;
             bounds = [| 2 |]; n = 1; speed = 1; horizon = 0; queue_limit = 0 });
      expect_error client "path-unsafe session name";
      (* Snapshot-to-file is confined to the server's snapshot
         directory: anything but a bare path-safe file name is refused. *)
      Client.send client
        (Wire.Snapshot { session = "live"; path = Some "../evil.sess.jsonl" });
      expect_error client "path-escaping snapshot file name";
      Client.send client
        (Wire.Snapshot { session = "live"; path = Some "/tmp/evil.sess.jsonl" });
      expect_error client "absolute snapshot path";
      (match
         expect_ok
           (Client.call client
              (Wire.Snapshot { session = "live"; path = Some "manual.snap" }))
       with
      | Wire.Snapshotted { path = Some path; _ } ->
          check_string "resolved inside snap_dir"
            (Filename.concat snap_dir "manual.snap") path;
          check_bool "snapshot file written" true (Sys.file_exists path)
      | f -> Alcotest.failf "unexpected snapshot reply %s" (Wire.encode f));
      (* The session is unharmed: same stats as before the corpus. *)
      let stats_after =
        expect_ok (Client.call client (Wire.Stats { session = "live" }))
      in
      check_string "session unharmed by corpus" (Wire.encode stats_before)
        (Wire.encode stats_after);
      (match expect_ok (Client.call client (Wire.Step { session = "live"; rounds = 2 })) with
      | Wire.Stepped { round; _ } -> check "still stepping" 3 round
      | f -> Alcotest.failf "unexpected step reply %s" (Wire.encode f));
      (match expect_ok (Client.call client (Wire.Close { session = "live" })) with
      | Wire.Closed _ -> ()
      | f -> Alcotest.failf "unexpected close reply %s" (Wire.encode f));
      Client.close client)

(* ---- live server: drain to disk + restore continues the ledger ---- *)

let feed_step client session colors counts =
  ignore (expect_ok (Client.call client (Wire.Feed { session; colors; counts })));
  match expect_ok (Client.call client (Wire.Step { session; rounds = 1 })) with
  | Wire.Stepped _ -> ()
  | f -> Alcotest.failf "unexpected step reply %s" (Wire.encode f)

let test_server_drain_restore () =
  let dir = Filename.temp_file "rrs_drain" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let address = Server.Unix_socket (Filename.concat dir "sock") in
  let config =
    { (Server.default_config address) with
      domains = 2;
      snap_dir = Some (Filename.concat dir "snaps") }
  in
  (* Uninterrupted reference: same feeds against one server lifetime. *)
  let reference =
    with_server (fun ~address ~snap_dir:_ ->
        let client = Client.connect address in
        ignore
          (expect_ok
             (Client.call client
                (Wire.Open
                   { session = "d"; policy = "dlru-edf"; delta = 3;
                     bounds = [| 2; 2; 4 |]; n = 4; speed = 1; horizon = 0;
                     queue_limit = 0 })));
        feed_step client "d" [| 0; 1 |] [| 3; 2 |];
        feed_step client "d" [| 2 |] [| 4 |];
        feed_step client "d" [| 0; 2 |] [| 1; 2 |];
        feed_step client "d" [||] [||];
        let stats = expect_ok (Client.call client (Wire.Stats { session = "d" })) in
        Client.close client;
        Wire.encode stats)
  in
  (* Interrupted: two server processes around a drain. *)
  let server1 = Server.start config in
  let client = Client.connect address in
  ignore
    (expect_ok
       (Client.call client
          (Wire.Open
             { session = "d"; policy = "dlru-edf"; delta = 3;
               bounds = [| 2; 2; 4 |]; n = 4; speed = 1; horizon = 0;
               queue_limit = 0 })));
  feed_step client "d" [| 0; 1 |] [| 3; 2 |];
  feed_step client "d" [| 2 |] [| 4 |];
  Client.close client;
  check "one session drained" 1 (Server.stop ~drain:true server1);
  let server2 = Server.start config in
  let client = Client.connect address in
  feed_step client "d" [| 0; 2 |] [| 1; 2 |];
  feed_step client "d" [||] [||];
  let stats = expect_ok (Client.call client (Wire.Stats { session = "d" })) in
  (* Closing deletes the drain snapshot; a second close is "no such
     session", not an internal error. *)
  (match expect_ok (Client.call client (Wire.Close { session = "d" })) with
  | Wire.Closed _ -> ()
  | f -> Alcotest.failf "unexpected close reply %s" (Wire.encode f));
  Client.send client (Wire.Close { session = "d" });
  expect_error client "double close";
  Client.close client;
  check_bool "closed session leaves no snapshot" false
    (Sys.file_exists
       (Filename.concat (Filename.concat dir "snaps") "d.sess.jsonl"));
  check "nothing left to drain" 0 (Server.stop ~drain:true server2);
  (* A restart after the close must not resurrect the session from a
     stale snapshot. *)
  let server3 = Server.start config in
  let client = Client.connect address in
  Client.send client (Wire.Stats { session = "d" });
  expect_error client "closed session resurrected after restart";
  Client.close client;
  ignore (Server.stop ~drain:false server3);
  check_string "ledger continues across restart" reference (Wire.encode stats)

let prop = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "server.wire",
      [
        prop prop_wire_roundtrip;
        prop prop_wire_framed_roundtrip;
        Alcotest.test_case "malformed lines stay line-synced" `Quick
          test_wire_malformed_lines;
      ] );
    ( "server.session",
      [
        Alcotest.test_case "shed + conservation" `Quick
          test_session_shed_and_conservation;
        Alcotest.test_case "close/release idempotent trace" `Quick
          test_session_close_idempotent_trace;
      ] );
    ( "server.stepper",
      [
        Alcotest.test_case "engine = stepper loop (byte-identical)" `Quick
          test_engine_stepper_identity;
        Alcotest.test_case "multi-feed round = combined feed" `Quick
          test_stepper_multi_feed_order;
        Alcotest.test_case "snapshot/restore mid-run" `Quick
          test_snapshot_restore_midrun;
        Alcotest.test_case "restore rejects tampering" `Quick
          test_restore_rejects_tampering;
        prop prop_snapshot_restore;
      ] );
    ( "server.live",
      [
        Alcotest.test_case "survives malformed corpus" `Quick
          test_server_survives_malformed;
        Alcotest.test_case "drain + restore continuity" `Quick
          test_server_drain_restore;
      ] );
  ]
