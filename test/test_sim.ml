(* Simulator substrate tests: instances, job pool, ledger, engine phase
   semantics, schedule validation, rebuild, trace round-trips. *)

module Types = Rrs_sim.Types
module Instance = Rrs_sim.Instance
module Job_pool = Rrs_sim.Job_pool
module Ledger = Rrs_sim.Ledger
module Engine = Rrs_sim.Engine
module Schedule = Rrs_sim.Schedule
module Rebuild = Rrs_sim.Rebuild
module Trace = Rrs_sim.Trace

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tiny ?(delta = 2) ?(bounds = [| 2; 4 |]) arrivals =
  Instance.make ~delta ~bounds ~arrivals ()

(* ---- Types ---- *)

let test_normalize_request () =
  Alcotest.(check (list (pair int int)))
    "merge + sort + drop zeros"
    [ (0, 3); (2, 1) ]
    (Types.normalize_request [ (2, 1); (0, 2); (0, 1); (1, 0) ]);
  Alcotest.check_raises "negative count"
    (Invalid_argument "Types.normalize_request: negative count") (fun () ->
      ignore (Types.normalize_request [ (0, -1) ]))

(* ---- Instance ---- *)

let test_instance_horizon () =
  let i = tiny [ (0, [ (0, 1) ]); (4, [ (1, 2) ]) ] in
  (* color 1 arrives at 4 with bound 4 -> deadline 8 -> horizon 9. *)
  check "horizon" 9 i.horizon;
  check "total jobs" 3 (Instance.total_jobs i);
  check "jobs of color 1" 2 (Instance.jobs_of_color i 1)

let test_instance_classification () =
  let batched = tiny [ (0, [ (0, 5) ]); (4, [ (1, 3) ]) ] in
  check_bool "batched" true (Instance.is_batched batched);
  check_bool "not rate-limited (5 > D0=2)" false (Instance.is_rate_limited batched);
  let rl = tiny [ (0, [ (0, 2) ]); (4, [ (1, 4) ]) ] in
  check_bool "rate-limited" true (Instance.is_rate_limited rl);
  let unb = tiny [ (1, [ (0, 1) ]) ] in
  check_bool "unbatched" false (Instance.is_batched unb);
  check_bool "pow2" true (Instance.bounds_pow2 batched);
  let odd = Instance.make ~delta:1 ~bounds:[| 3 |] ~arrivals:[ (0, [ (0, 1) ]) ] () in
  check_bool "non-pow2" false (Instance.bounds_pow2 odd)

let test_instance_validation_errors () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  expect_invalid "delta 0" (fun () ->
      Instance.make ~delta:0 ~bounds:[| 1 |] ~arrivals:[] ());
  expect_invalid "no colors" (fun () ->
      Instance.make ~delta:1 ~bounds:[||] ~arrivals:[] ());
  expect_invalid "bad bound" (fun () ->
      Instance.make ~delta:1 ~bounds:[| 0 |] ~arrivals:[] ());
  expect_invalid "negative round" (fun () ->
      Instance.make ~delta:1 ~bounds:[| 1 |] ~arrivals:[ (-1, [ (0, 1) ]) ] ());
  expect_invalid "unknown color" (fun () ->
      Instance.make ~delta:1 ~bounds:[| 1 |] ~arrivals:[ (0, [ (7, 1) ]) ] ());
  expect_invalid "short horizon" (fun () ->
      Instance.make ~delta:1 ~horizon:1 ~bounds:[| 4 |]
        ~arrivals:[ (0, [ (0, 1) ]) ] ())

let test_iter_jobs () =
  let i = tiny [ (0, [ (0, 2); (1, 1) ]) ] in
  let jobs = ref [] in
  Instance.iter_jobs i (fun j -> jobs := j :: !jobs);
  check "job count" 3 (List.length !jobs);
  check_bool "deadlines respect bounds" true
    (List.for_all
       (fun (j : Types.job) -> j.deadline = j.arrival + i.bounds.(j.color))
       !jobs)

(* ---- Job pool ---- *)

let test_pool_lifecycle () =
  let pool = Job_pool.create ~num_colors:2 in
  Job_pool.add pool ~color:0 ~deadline:3 ~count:2;
  Job_pool.add pool ~color:0 ~deadline:5 ~count:1;
  Job_pool.add pool ~color:1 ~deadline:4 ~count:1;
  check "pending 0" 3 (Job_pool.pending pool 0);
  check "total" 4 (Job_pool.total_pending pool);
  Alcotest.(check (option int)) "earliest" (Some 3) (Job_pool.earliest_deadline pool 0);
  (* Execute consumes earliest deadline. *)
  Alcotest.(check (option int)) "exec" (Some 3) (Job_pool.execute_one pool ~color:0 ~round:1);
  check "pending 0 after exec" 2 (Job_pool.pending pool 0);
  (* Drop phase at round 3 drops the remaining deadline-3 job. *)
  Alcotest.(check (list (pair int int)))
    "drops" [ (0, 1) ]
    (Job_pool.drop_expired pool ~round:3);
  check "pending 0 after drop" 1 (Job_pool.pending pool 0);
  Alcotest.(check (list int)) "nonidle colors" [ 0; 1 ] (Job_pool.nonidle_colors pool)

let test_pool_expired_execution_rejected () =
  let pool = Job_pool.create ~num_colors:1 in
  Job_pool.add pool ~color:0 ~deadline:2 ~count:1;
  match Job_pool.execute_one pool ~color:0 ~round:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of expired execution"

let test_pool_copy_independent () =
  let pool = Job_pool.create ~num_colors:1 in
  Job_pool.add pool ~color:0 ~deadline:5 ~count:2;
  let copy = Job_pool.copy pool in
  ignore (Job_pool.execute_one pool ~color:0 ~round:0);
  check "original shrank" 1 (Job_pool.pending pool 0);
  check "copy unchanged" 2 (Job_pool.pending copy 0)

let test_pool_copy_preserves_clock () =
  (* Regression: [copy] used to rebuild the pool via [add] from time 0,
     which reset the expiry clock — the copy then accepted already-expired
     deadlines and re-walked every round from 0 on its next drop phase. *)
  let pool = Job_pool.create ~num_colors:2 in
  Job_pool.add pool ~color:0 ~deadline:5 ~count:1;
  Job_pool.add pool ~color:1 ~deadline:12 ~count:2;
  Alcotest.(check (list (pair int int)))
    "drop at 9" [ (0, 1) ]
    (Job_pool.drop_expired pool ~round:9);
  let copy = Job_pool.copy pool in
  Alcotest.(check (option int))
    "earliest_deadline agrees"
    (Job_pool.earliest_deadline pool 1)
    (Job_pool.earliest_deadline copy 1);
  let expect_expired name p =
    match Job_pool.add p ~color:0 ~deadline:5 ~count:1 with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.failf "%s accepted an already-expired deadline" name
  in
  expect_expired "original" pool;
  expect_expired "copy" copy;
  (* Both pools drop the surviving batch in the same round. *)
  Alcotest.(check (list (pair int int)))
    "copy drops at 12" [ (1, 2) ]
    (Job_pool.drop_expired copy ~round:12);
  Alcotest.(check (list (pair int int)))
    "original drops at 12" [ (1, 2) ]
    (Job_pool.drop_expired pool ~round:12)

let test_pool_copy_then_simulate () =
  (* A copy taken mid-simulation must evolve exactly like the original
     under the same subsequent operations. *)
  let pool = Job_pool.create ~num_colors:3 in
  Job_pool.add pool ~color:0 ~deadline:4 ~count:2;
  Job_pool.add pool ~color:1 ~deadline:6 ~count:1;
  ignore (Job_pool.drop_expired pool ~round:0);
  ignore (Job_pool.execute_one pool ~color:0 ~round:0);
  let copy = Job_pool.copy pool in
  let drive p =
    let trace = ref [] in
    for round = 1 to 8 do
      let dropped = Job_pool.drop_expired p ~round in
      if round = 2 then Job_pool.add p ~color:2 ~deadline:(round + 3) ~count:1;
      let executed = Job_pool.execute_one p ~color:(round mod 3) ~round in
      trace := (round, dropped, executed, Job_pool.total_pending p) :: !trace
    done;
    List.rev !trace
  in
  check_bool "copy-then-simulate traces agree" true (drive pool = drive copy)

(* ---- Ledger ---- *)

let test_ledger_costs () =
  let l = Ledger.create ~delta:3 () in
  Ledger.record_reconfig l ~round:0 ~mini_round:0 ~location:0 ~previous:None ~next:1;
  Ledger.record_reconfig l ~round:1 ~mini_round:0 ~location:0 ~previous:(Some 1)
    ~next:2;
  Ledger.record_drop l ~round:2 ~color:1 ~count:4;
  Ledger.record_execute l ~round:1 ~mini_round:0 ~location:0 ~color:2 ~deadline:3;
  check "reconfig cost" 6 (Ledger.reconfig_cost l);
  check "total" 10 (Ledger.total_cost l);
  check "events" 4 (List.length (Ledger.events l))

(* ---- Engine semantics ---- *)

(* Idle-policy: never configures anything; every job must be dropped at
   exactly its deadline. *)
module Idle_policy = struct
  type t = int

  let name = "idle"
  let create ~n ~delta:_ ~bounds:_ = n
  let on_drop _ ~round:_ ~dropped:_ = ()
  let on_arrival _ ~round:_ ~request:_ = ()
  let reconfigure n _view = Array.make n None
  let stats _ = []
  let serialize _ = "{}"
  let deserialize _ _ = ()
end

(* Pin-policy: configures location 0 to color 0 forever. *)
module Pin_policy = struct
  type t = int

  let name = "pin0"
  let create ~n ~delta:_ ~bounds:_ = n
  let on_drop _ ~round:_ ~dropped:_ = ()
  let on_arrival _ ~round:_ ~request:_ = ()

  let reconfigure n _view =
    let target = Array.make n None in
    target.(0) <- Some 0;
    target

  let stats _ = []
  let serialize _ = "{}"
  let deserialize _ _ = ()
end

let test_engine_idle_drops_everything () =
  let i = tiny [ (0, [ (0, 2); (1, 1) ]); (2, [ (0, 1) ]) ] in
  let result = Engine.run ~n:2 ~policy:(module Idle_policy) i in
  check "all dropped" 4 (Ledger.drop_count result.ledger);
  check "no reconfig" 0 (Ledger.reconfig_count result.ledger);
  check "cost = drops" 4 (Ledger.total_cost result.ledger);
  let schedule = Schedule.of_run ~instance:i ~n:2 ~speed:1 result.ledger in
  check_bool "validates" true (Schedule.validate schedule = Ok ())

let test_engine_drop_timing () =
  (* A color-0 job arriving at round 0 with bound 2 must drop exactly in
     round 2's drop phase. *)
  let i = tiny [ (0, [ (0, 1) ]) ] in
  let result = Engine.run ~n:1 ~policy:(module Idle_policy) i in
  (match Ledger.events result.ledger with
  | [ Ledger.Drop { round; color; count } ] ->
      check "drop round" 2 round;
      check "drop color" 0 color;
      check "drop count" 1 count
  | events -> Alcotest.failf "unexpected events (%d)" (List.length events));
  check "cost" 1 (Ledger.total_cost result.ledger)

let test_engine_pin_executes () =
  (* Pinned resource executes one color-0 job per round: 2 jobs arriving
     at round 0 with bound 2 are both executed (rounds 0 and 1). *)
  let i = tiny [ (0, [ (0, 2) ]) ] in
  let result = Engine.run ~n:1 ~policy:(module Pin_policy) i in
  check "executions" 2 (Ledger.exec_count result.ledger);
  check "drops" 0 (Ledger.drop_count result.ledger);
  check "one reconfiguration" 1 (Ledger.reconfig_count result.ledger);
  check "cost" 2 (Ledger.total_cost result.ledger)

let test_engine_capacity_bound () =
  (* 3 jobs, bound 2, one pinned resource: only rounds 0 and 1 available,
     so exactly one job drops. *)
  let i = tiny [ (0, [ (0, 3) ]) ] in
  let result = Engine.run ~n:1 ~policy:(module Pin_policy) i in
  check "executions" 2 (Ledger.exec_count result.ledger);
  check "drops" 1 (Ledger.drop_count result.ledger)

let test_engine_double_speed () =
  (* Double speed: two executions per round on one pinned resource. *)
  let i = tiny [ (0, [ (0, 3) ]) ] in
  let result = Engine.run ~speed:2 ~n:1 ~policy:(module Pin_policy) i in
  check "executions" 3 (Ledger.exec_count result.ledger);
  check "drops" 0 (Ledger.drop_count result.ledger);
  let schedule = Schedule.of_run ~instance:i ~n:1 ~speed:2 result.ledger in
  check_bool "double-speed schedule validates" true (Schedule.validate schedule = Ok ())

let test_engine_same_color_free () =
  (* Re-activating the same physical color is free: pin executes color 0
     in two separate bursts, paying for one reconfiguration only. *)
  let i = tiny [ (0, [ (0, 1) ]); (8, [ (0, 1) ]) ] in
  let result = Engine.run ~n:1 ~policy:(module Pin_policy) i in
  check "one reconfiguration" 1 (Ledger.reconfig_count result.ledger);
  check "both executed" 2 (Ledger.exec_count result.ledger)

let test_engine_bad_policy_rejected () =
  let module Bad = struct
    type t = unit

    let name = "bad"
    let create ~n:_ ~delta:_ ~bounds:_ = ()
    let on_drop () ~round:_ ~dropped:_ = ()
    let on_arrival () ~round:_ ~request:_ = ()
    let reconfigure () _view = [| Some 0 |] (* wrong length for n = 2 *)
    let stats () = []
    let serialize () = "{}"
    let deserialize () _ = ()
  end in
  let i = tiny [ (0, [ (0, 1) ]) ] in
  match Engine.run ~n:2 ~policy:(module Bad) i with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_engine_color_out_of_range () =
  (* Regression: the engine used to apply out-of-range colors blindly,
     crashing deep inside the job pool (or silently corrupting the
     assignment for negative colors). It must reject them up front with a
     diagnostic naming the policy and the exact location/round. *)
  let module Stray = struct
    type t = unit

    let name = "stray"
    let create ~n:_ ~delta:_ ~bounds:_ = ()
    let on_drop () ~round:_ ~dropped:_ = ()
    let on_arrival () ~round:_ ~request:_ = ()
    let reconfigure () _view = [| Some 7; None |]
    let stats () = []
    let serialize () = "{}"
    let deserialize () _ = ()
  end in
  let i = tiny [ (0, [ (0, 1) ]) ] in
  Alcotest.check_raises "out-of-range color"
    (Invalid_argument
       "Engine.run: policy stray returned color 7 at location 0 (round 0, mini-round 0); valid colors are 0..1")
    (fun () -> ignore (Engine.run ~n:2 ~policy:(module Stray) i));
  let module Negative = struct
    type t = unit

    let name = "negative"
    let create ~n:_ ~delta:_ ~bounds:_ = ()
    let on_drop () ~round:_ ~dropped:_ = ()
    let on_arrival () ~round:_ ~request:_ = ()
    let reconfigure () _view = [| None; Some (-1) |]
    let stats () = []
    let serialize () = "{}"
    let deserialize () _ = ()
  end in
  Alcotest.check_raises "negative color"
    (Invalid_argument
       "Engine.run: policy negative returned color -1 at location 1 (round 0, mini-round 0); valid colors are 0..1")
    (fun () -> ignore (Engine.run ~n:2 ~policy:(module Negative) i))

(* ---- Schedule validation catches corrupted logs ---- *)

let run_pin i = Engine.run ~n:1 ~policy:(module Pin_policy) i

let test_validator_rejects_phantom_exec () =
  let i = tiny [ (0, [ (0, 1) ]) ] in
  let result = run_pin i in
  let events =
    Ledger.events result.ledger
    @ [ Ledger.Execute { round = 1; mini_round = 0; location = 0; color = 0; deadline = 2 } ]
  in
  let schedule = { Schedule.instance = i; n = 1; speed = 1; events } in
  check_bool "phantom execution rejected" true (Schedule.validate schedule <> Ok ())

let test_validator_rejects_wrong_previous () =
  let i = tiny [ (0, [ (0, 1) ]) ] in
  let result = run_pin i in
  let events =
    List.map
      (function
        | Ledger.Reconfig r -> Ledger.Reconfig { r with previous = Some 9 }
        | e -> e)
      (Ledger.events result.ledger)
  in
  let schedule = { Schedule.instance = i; n = 1; speed = 1; events } in
  check_bool "wrong previous rejected" true (Schedule.validate schedule <> Ok ())

let test_validator_rejects_missing_drop () =
  let i = tiny [ (0, [ (0, 2) ]) ] in
  let result = Engine.run ~n:1 ~policy:(module Idle_policy) i in
  let events =
    List.filter (function Ledger.Drop _ -> false | _ -> true)
      (Ledger.events result.ledger)
  in
  let schedule = { Schedule.instance = i; n = 1; speed = 1; events } in
  check_bool "missing drops rejected" true (Schedule.validate schedule <> Ok ())

let test_validator_rejects_double_booking () =
  let i = tiny [ (0, [ (0, 2) ]) ] in
  let events =
    [
      Ledger.Reconfig { round = 0; mini_round = 0; location = 0; previous = None; next = 0 };
      Ledger.Execute { round = 0; mini_round = 0; location = 0; color = 0; deadline = 2 };
      Ledger.Execute { round = 0; mini_round = 0; location = 0; color = 0; deadline = 2 };
      Ledger.Drop { round = 2; color = 0; count = 0 };
    ]
  in
  let schedule = { Schedule.instance = i; n = 1; speed = 1; events } in
  check_bool "double booking rejected" true (Schedule.validate schedule <> Ok ())

(* ---- Rebuild ---- *)

let test_rebuild_roundtrip () =
  (* Rebuilding the pin policy's own actions reproduces its costs. *)
  let i = tiny [ (0, [ (0, 2) ]); (4, [ (1, 1) ]) ] in
  let result = run_pin i in
  let actions =
    List.filter_map
      (function
        | Ledger.Reconfig { round; mini_round; location; next; _ } ->
            Some (Rebuild.Configure { round; mini_round; location; color = next })
        | Ledger.Execute { round; mini_round; location; color; _ } ->
            Some (Rebuild.Run { round; mini_round; location; color })
        | Ledger.Drop _ | Ledger.Crash _ | Ledger.Repair _
        | Ledger.Reconfig_failed _ ->
            None)
      (Ledger.events result.ledger)
  in
  match Rebuild.rebuild ~instance:i ~n:1 ~speed:1 ~actions with
  | Error e -> Alcotest.fail e
  | Ok schedule ->
      check "cost matches" (Ledger.total_cost result.ledger)
        (Schedule.total_cost schedule);
      check_bool "validates" true (Schedule.validate schedule = Ok ())

let test_rebuild_rejects_bad_run () =
  let i = tiny [ (0, [ (0, 1) ]) ] in
  let actions = [ Rebuild.Run { round = 0; mini_round = 0; location = 0; color = 0 } ] in
  (match Rebuild.rebuild ~instance:i ~n:1 ~speed:1 ~actions with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "run without configure must fail");
  let actions =
    [
      Rebuild.Configure { round = 0; mini_round = 0; location = 0; color = 1 };
      Rebuild.Run { round = 0; mini_round = 0; location = 0; color = 1 };
    ]
  in
  match Rebuild.rebuild ~instance:i ~n:1 ~speed:1 ~actions with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "phantom job must fail"

let test_rebuild_collapses_same_color () =
  (* Configuring the same color twice charges once. *)
  let i = tiny [ (0, [ (0, 2) ]) ] in
  let actions =
    [
      Rebuild.Configure { round = 0; mini_round = 0; location = 0; color = 0 };
      Rebuild.Run { round = 0; mini_round = 0; location = 0; color = 0 };
      Rebuild.Configure { round = 1; mini_round = 0; location = 0; color = 0 };
      Rebuild.Run { round = 1; mini_round = 0; location = 0; color = 0 };
    ]
  in
  match Rebuild.rebuild ~instance:i ~n:1 ~speed:1 ~actions with
  | Error e -> Alcotest.fail e
  | Ok schedule ->
      check "one reconfig" 1 (Schedule.reconfig_count schedule);
      check "no drops" 0 (Schedule.drop_count schedule)

(* ---- Trace round trip ---- *)

let test_trace_roundtrip () =
  let i =
    Instance.make ~name:"roundtrip demo" ~delta:5 ~bounds:[| 2; 8; 4 |]
      ~arrivals:[ (0, [ (0, 1); (2, 3) ]); (8, [ (1, 2) ]) ]
      ()
  in
  match Trace.of_string (Trace.to_string i) with
  | Error e -> Alcotest.fail e
  | Ok i' ->
      check "delta" i.delta i'.delta;
      Alcotest.(check (array int)) "bounds" i.bounds i'.bounds;
      check "horizon" i.horizon i'.horizon;
      check "jobs" (Instance.total_jobs i) (Instance.total_jobs i');
      Alcotest.(check string) "name" "roundtrip demo" i'.name

let test_trace_parse_errors () =
  let is_error text = check_bool text true (Result.is_error (Trace.of_string text)) in
  is_error "delta 4\nend\n";
  is_error "bounds 2 4\nend\n";
  is_error "delta x\nbounds 2\nend\n";
  is_error "delta 4\nbounds 2\narrival 0 9:1\nend\n";
  is_error "delta 4\nbounds 2\nfrobnicate\nend\n"

let test_trace_comments_and_whitespace () =
  let text =
    "rrs-trace v1\n# a comment\nname   spaced name\ndelta 2 # inline\nbounds 4\n\n\
     arrival 0 0:2\nend\n"
  in
  match Trace.of_string text with
  | Error e -> Alcotest.fail e
  | Ok i ->
      check "jobs" 2 (Instance.total_jobs i);
      Alcotest.(check string) "name keeps spaces" "spaced name" i.name

(* ---- Properties ---- *)

(* Model-based check of Job_pool against a naive list of (deadline)
   multiset operations. *)
let prop_pool_matches_model =
  QCheck2.Test.make ~name:"job_pool: agrees with a naive list model" ~count:150
    QCheck2.Gen.(list (pair (int_bound 3) (pair (int_bound 2) (int_bound 12))))
    (fun ops ->
      let pool = Job_pool.create ~num_colors:3 in
      let model = ref [] in (* (color, deadline) list *)
      let round = ref 0 in
      let ok = ref true in
      List.iter
        (fun (op, (color, value)) ->
          match op with
          | 0 ->
              (* add [value mod 3 + 1] jobs at deadline round + offset *)
              let deadline = !round + 1 + (value mod 8) in
              let count = 1 + (value mod 3) in
              Job_pool.add pool ~color ~deadline ~count;
              for _ = 1 to count do
                model := (color, deadline) :: !model
              done
          | 1 -> (
              (* execute one of [color]: earliest deadline *)
              let expected =
                List.filter (fun (c, _) -> c = color) !model
                |> List.map snd
                |> List.sort Int.compare
              in
              match (Job_pool.execute_one pool ~color ~round:!round, expected) with
              | None, [] -> ()
              | Some d, e :: _ when d = e ->
                  (* remove one occurrence *)
                  let removed = ref false in
                  model :=
                    List.filter
                      (fun (c, dl) ->
                        if (not !removed) && c = color && dl = d then begin
                          removed := true;
                          false
                        end
                        else true)
                      !model
              | _ -> ok := false)
          | 2 ->
              (* advance one round: drop expired *)
              round := !round + 1;
              let dropped = Job_pool.drop_expired pool ~round:!round in
              let expected = List.filter (fun (_, d) -> d <= !round) !model in
              model := List.filter (fun (_, d) -> d > !round) !model;
              let total =
                List.fold_left (fun acc (_, count) -> acc + count) 0 dropped
              in
              if total <> List.length expected then ok := false
          | _ ->
              (* consistency probes *)
              if Job_pool.pending pool color
                 <> List.length (List.filter (fun (c, _) -> c = color) !model)
              then ok := false)
        ops;
      !ok && Job_pool.total_pending pool = List.length !model)

let prop_engine_deterministic =
  QCheck2.Test.make ~name:"engine: identical runs produce identical ledgers"
    ~count:30 Test_helpers.gen_rate_limited (fun instance ->
      let run () =
        let r =
          Engine.run ~record_events:true ~n:8
            ~policy:(module Rrs_core.Policy_lru_edf) instance
        in
        (Ledger.total_cost r.ledger, Ledger.events r.ledger)
      in
      run () = run ())

let prop_trace_roundtrip =
  QCheck2.Test.make ~name:"trace: to_string/of_string roundtrip" ~count:60
    Test_helpers.gen_batched (fun instance ->
      match Trace.of_string (Trace.to_string instance) with
      | Error _ -> false
      | Ok back ->
          back.Instance.delta = instance.Instance.delta
          && back.Instance.bounds = instance.Instance.bounds
          && back.Instance.requests = instance.Instance.requests)

let quick name f = Alcotest.test_case name `Quick f
let prop p = QCheck_alcotest.to_alcotest p

let suite =
  [
    ( "sim.instance",
      [
        quick "normalize request" test_normalize_request;
        quick "horizon computation" test_instance_horizon;
        quick "classification" test_instance_classification;
        quick "validation errors" test_instance_validation_errors;
        quick "iter_jobs" test_iter_jobs;
      ] );
    ( "sim.job_pool",
      [
        quick "lifecycle" test_pool_lifecycle;
        quick "expired execution rejected" test_pool_expired_execution_rejected;
        quick "copy independence" test_pool_copy_independent;
        quick "copy preserves expiry clock" test_pool_copy_preserves_clock;
        quick "copy-then-simulate equivalence" test_pool_copy_then_simulate;
      ] );
    ("sim.ledger", [ quick "costs" test_ledger_costs ]);
    ( "sim.engine",
      [
        quick "idle policy drops everything" test_engine_idle_drops_everything;
        quick "drop timing" test_engine_drop_timing;
        quick "pinned execution" test_engine_pin_executes;
        quick "capacity bound" test_engine_capacity_bound;
        quick "double speed" test_engine_double_speed;
        quick "same-color reuse is free" test_engine_same_color_free;
        quick "bad policy rejected" test_engine_bad_policy_rejected;
        quick "out-of-range color rejected" test_engine_color_out_of_range;
      ] );
    ( "sim.schedule",
      [
        quick "phantom execution rejected" test_validator_rejects_phantom_exec;
        quick "wrong previous rejected" test_validator_rejects_wrong_previous;
        quick "missing drops rejected" test_validator_rejects_missing_drop;
        quick "double booking rejected" test_validator_rejects_double_booking;
      ] );
    ( "sim.rebuild",
      [
        quick "roundtrip of engine actions" test_rebuild_roundtrip;
        quick "bad actions rejected" test_rebuild_rejects_bad_run;
        quick "same-color collapse" test_rebuild_collapses_same_color;
      ] );
    ( "sim.trace",
      [
        quick "roundtrip" test_trace_roundtrip;
        quick "parse errors" test_trace_parse_errors;
        quick "comments and whitespace" test_trace_comments_and_whitespace;
      ] );
    ( "sim.properties",
      [
        prop prop_pool_matches_model;
        prop prop_engine_deterministic;
        prop prop_trace_roundtrip;
      ] );
  ]
