(* Sweep-runner and bench-serialization tests: striped domain map
   ordering, sequential/parallel outcome equality, BENCH json content. *)

module Sweep = Rrs_sim.Sweep
module Engine = Rrs_sim.Engine
module Ledger = Rrs_sim.Ledger
module Bench_io = Rrs_stats.Bench_io

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

(* ---- Sweep.map ---- *)

let test_map_preserves_order () =
  let items = Array.init 37 Fun.id in
  let expected = Array.map (fun x -> (x * x) + 1) items in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "order with %d domains" domains)
        expected
        (Sweep.map ~domains (fun x -> (x * x) + 1) items))
    [ 1; 2; 4; 7 ]

let test_map_empty_and_excess_domains () =
  Alcotest.(check (array int)) "empty" [||] (Sweep.map ~domains:4 Fun.id [||]);
  Alcotest.(check (array int))
    "more domains than items" [| 10 |]
    (Sweep.map ~domains:8 (fun x -> x * 10) [| 1 |])

let test_map_reraises () =
  match
    Sweep.map ~domains:3
      (fun x -> if x = 5 then failwith "boom" else x)
      (Array.init 8 Fun.id)
  with
  | exception Failure msg when msg = "boom" -> ()
  | exception e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected the worker exception to re-raise"

(* ---- Sweep.run ---- *)

let grid () =
  let policies : (string * (module Rrs_sim.Policy.POLICY)) list =
    [
      ("dlru", (module Rrs_core.Policy_lru));
      ("dlru-edf", (module Rrs_core.Policy_lru_edf));
    ]
  in
  List.concat_map
    (fun (name, policy) ->
      List.map
        (fun seed ->
          let instance =
            Rrs_workload.Random_workloads.uniform ~seed ~colors:6 ~delta:2
              ~bound_log_range:(0, 3) ~horizon:64 ~load:0.8 ~rate_limited:true
              ()
          in
          Sweep.task
            ~key:(Printf.sprintf "%s/seed=%d" name seed)
            ~policy ~n:4 instance)
        [ 1; 2; 3 ])
    policies

let strip (o : Sweep.outcome) =
  (o.key, o.n, o.delta, o.cost, o.reconfig_count, o.drop_count, o.exec_count)

let test_run_submission_order () =
  let tasks = grid () in
  let outcomes = Sweep.run ~domains:1 tasks in
  Alcotest.(check (list string))
    "keys in submission order"
    (List.map (fun (t : Sweep.task) -> t.key) tasks)
    (List.map (fun (o : Sweep.outcome) -> o.key) outcomes)

let test_run_parallel_matches_sequential () =
  let tasks = grid () in
  let sequential = Sweep.run ~domains:1 tasks in
  let parallel = Sweep.run ~domains:4 tasks in
  check_bool "identical ledger totals" true
    (List.map strip sequential = List.map strip parallel)

let test_run_matches_engine () =
  (* A sweep outcome is exactly a (record_events:false) engine run. *)
  match grid () with
  | [] -> Alcotest.fail "empty grid"
  | (t : Sweep.task) :: _ ->
      let result =
        Engine.run ~n:t.n ~record_events:false ~policy:t.policy t.instance
      in
      let o = List.hd (Sweep.run ~domains:1 [ t ]) in
      check "cost" (Ledger.total_cost result.ledger) o.cost;
      check "reconfigs" (Ledger.reconfig_count result.ledger) o.reconfig_count;
      check "drops" (Ledger.drop_count result.ledger) o.drop_count;
      check "execs" (Ledger.exec_count result.ledger) o.exec_count

(* ---- Bench_io ---- *)

let test_tag_of_path () =
  check_string "BENCH_ prefix stripped" "pr1"
    (Bench_io.tag_of_path "results/BENCH_pr1.json");
  check_string "plain basename" "baseline"
    (Bench_io.tag_of_path "/tmp/baseline.json")

let test_json_document () =
  let b = Bench_io.create ~tag:"unit" in
  Bench_io.start_experiment b ~id:"E1" ~claim:{|quotes " and \ slashes|};
  Bench_io.record b ~policy:"dlru" ~workload:"w0" ~n:4 ~delta:3 ~cost:17
    ~reconfig_count:5 ~drop_count:2 ();
  Bench_io.record b ~policy:"edf" ~workload:"w1" ~n:8 ~delta:3 ~cost:9
    ~reconfig_count:0 ~drop_count:9 ~exec_count:42 ~wall_s:0.25 ();
  let json = Bench_io.to_string b in
  check_bool "schema version" true (contains json {|"schema": "rrs-bench/3"|});
  check_bool "tag" true (contains json {|"tag": "unit"|});
  check_bool "claim escaped" true (contains json {|quotes \" and \\ slashes|});
  check_bool "reconfig_cost = delta * reconfigs" true
    (contains json {|"reconfig_cost": 15|});
  check_bool "optional exec_count present" true
    (contains json {|"exec_count": 42|});
  check_bool "optional wall_s present" true (contains json {|"wall_s": 0.250000|});
  check_bool "totals" true
    (contains json {|"totals": {"experiments": 1, "runs": 2|})

let test_json_adhoc_experiment () =
  let b = Bench_io.create ~tag:"t" in
  Bench_io.record b ~policy:"p" ~workload:"w" ~n:1 ~delta:1 ~cost:0
    ~reconfig_count:0 ~drop_count:0 ();
  check_bool "implicit adhoc group" true
    (contains (Bench_io.to_string b) {|"id": "adhoc"|})

let quick name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "sweep.map",
      [
        quick "preserves input order across domain counts"
          test_map_preserves_order;
        quick "empty input and excess domains" test_map_empty_and_excess_domains;
        quick "worker exceptions re-raise" test_map_reraises;
      ] );
    ( "sweep.run",
      [
        quick "submission order" test_run_submission_order;
        quick "parallel matches sequential" test_run_parallel_matches_sequential;
        quick "outcome matches a direct engine run" test_run_matches_engine;
      ] );
    ( "stats.bench_io",
      [
        quick "tag_of_path" test_tag_of_path;
        quick "json document" test_json_document;
        quick "adhoc experiment" test_json_adhoc_experiment;
      ] );
  ]
