(* Equivalence suite for Wire.Stream, the push-style frame extractor the
   readiness event loop runs on: over any byte sequence — valid frames,
   garbage, truncations — and ANY split of that sequence into feed
   chunks, the stream must emit exactly what the blocking pull reader
   emits over the same bytes. This is what lets the event-loop refactor
   claim both wire framings are preserved byte-identically. *)

module Wire = Rrs_server.Wire

let show_result = function
  | Wire.Frame f -> "Frame " ^ Wire.encode f
  | Wire.Malformed m -> "Malformed " ^ m
  | Wire.Eof -> "Eof"

let show_results rs = String.concat " | " (List.map show_result rs)

(* Reference: the pull reader over the full byte string, read to EOF. *)
let collect_reader framing data =
  let pos = ref 0 in
  let pull buf off len =
    let k = min len (String.length data - !pos) in
    Bytes.blit_string data !pos buf off k;
    pos := !pos + k;
    k
  in
  let r = Wire.reader_fn pull in
  let rec go acc n =
    if n > 10_000 then failwith "pull reader did not reach EOF"
    else
      match Wire.read ~framing r with
      | Wire.Eof -> List.rev (Wire.Eof :: acc)
      | res -> go (res :: acc) (n + 1)
  in
  go [] 0

(* Candidate: the incremental stream, fed in [chunks]-sized pieces (any
   leftover arrives as one final piece), drained after every feed. *)
let collect_stream framing data chunks =
  let s = Wire.Stream.create framing in
  let acc = ref [] in
  let finished = ref false in
  let drain () =
    let continue = ref true in
    while !continue && not !finished do
      match Wire.Stream.next s with
      | None -> continue := false
      | Some Wire.Eof ->
          acc := Wire.Eof :: !acc;
          finished := true
      | Some res -> acc := res :: !acc
    done
  in
  let pos = ref 0 in
  let total = String.length data in
  let feed k =
    let k = min k (total - !pos) in
    if k > 0 then begin
      Wire.Stream.feed s (Bytes.unsafe_of_string data) !pos k;
      pos := !pos + k;
      drain ()
    end
  in
  List.iter feed chunks;
  feed (total - !pos);
  Wire.Stream.feed_eof s;
  drain ();
  if not !finished then failwith "stream did not reach EOF";
  if Wire.Stream.fed s <> total then failwith "Stream.fed miscounts";
  List.rev !acc

let check_equivalent framing data chunks =
  let expected = collect_reader framing data in
  let got = collect_stream framing data chunks in
  if expected <> got then
    Alcotest.failf "reader/stream divergence on %S:\n  reader: %s\n  stream: %s"
      data (show_results expected) (show_results got);
  true

(* ---- qcheck: random frame/garbage soups under random chunking ---- *)

let gen_soup framing =
  QCheck2.Gen.(
    let gen_segment =
      oneof
        [
          (let* f = Test_server.gen_frame in
           return (Wire.to_wire framing f));
          (* truncated frame: the bytes of a real frame, cut short *)
          (let* f = Test_server.gen_frame in
           let w = Wire.to_wire framing f in
           let* k = int_range 0 (String.length w - 1) in
           return (String.sub w 0 k));
          (* printable garbage (newline-free) and lone newlines *)
          string_size ~gen:(char_range ' ' '~') (int_range 0 20);
          return "\n";
          (* arbitrary bytes, magic pairs included *)
          string_size ~gen:char (int_range 0 12);
        ]
    in
    let* segments = list_size (int_range 0 5) gen_segment in
    let* chunks = list_size (int_range 0 40) (int_range 1 50) in
    return (String.concat "" segments, chunks))

let prop_equiv framing name =
  QCheck2.Test.make ~name ~count:400 (gen_soup framing)
    (fun (data, chunks) -> check_equivalent framing data chunks)

let prop_equiv_v1 =
  prop_equiv Wire.V1 "stream: /1 equivalent to pull reader under any chunking"

let prop_equiv_v2 =
  prop_equiv Wire.V2 "stream: /2 equivalent to pull reader under any chunking"

(* ---- directed: the paths random soups are too small to hit ---- *)

(* A /1 line longer than max_frame must report the same single
   malformed result and resynchronize at the same newline. *)
let test_v1_overlong () =
  let line = String.make (Wire.max_frame + 10) 'a' ^ "\n" in
  let tail = Wire.to_wire Wire.V1 (Wire.Close { session = "s" }) in
  ignore (check_equivalent Wire.V1 (line ^ tail) [ 1000; 9_000_000 ])

(* A /2 header whose length field exceeds max_frame: malformed after the
   header, then resync over whatever follows. *)
let test_v2_oversize_header () =
  let b = Buffer.create 32 in
  Buffer.add_char b '\xF2';
  Buffer.add_char b 'R';
  let length = Wire.max_frame + 1 in
  Buffer.add_char b (Char.chr ((length lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((length lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((length lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (length land 0xff));
  Buffer.add_char b '\x05';
  Buffer.add_string b "trailing junk\n";
  Buffer.add_string b (Wire.to_wire Wire.V2 (Wire.Stats { session = "s" }));
  ignore (check_equivalent Wire.V2 (Buffer.contents b) [ 3; 3; 3; 3 ])

(* The hello negotiation: one /1 frame, switch, then /2 traffic — the
   stream must honor set_framing at the frame boundary even when the /2
   bytes were already buffered before the switch. *)
let test_framing_switch () =
  let hello = Wire.to_wire Wire.V1 (Wire.Hello { client_version = "rrs/2" }) in
  let after =
    Wire.to_wire Wire.V2 (Wire.Step { session = "s"; rounds = 3 })
    ^ Wire.to_wire Wire.V2 (Wire.Close { session = "s" })
  in
  let data = hello ^ after in
  let s = Wire.Stream.create Wire.V1 in
  (* everything arrives in one burst, before the switch *)
  Wire.Stream.feed_string s data;
  Wire.Stream.feed_eof s;
  (match Wire.Stream.next s with
  | Some (Wire.Frame (Wire.Hello _)) -> ()
  | other ->
      Alcotest.failf "expected hello, got %s"
        (match other with None -> "None" | Some r -> show_result r));
  Wire.Stream.set_framing s Wire.V2;
  (match Wire.Stream.next s with
  | Some (Wire.Frame (Wire.Step { rounds = 3; _ })) -> ()
  | _ -> Alcotest.fail "expected step after switch");
  (match Wire.Stream.next s with
  | Some (Wire.Frame (Wire.Close _)) -> ()
  | _ -> Alcotest.fail "expected close after switch");
  match Wire.Stream.next s with
  | Some Wire.Eof -> ()
  | _ -> Alcotest.fail "expected eof"

(* Byte-at-a-time chunking across a multi-frame conversation. *)
let test_byte_at_a_time () =
  List.iter
    (fun framing ->
      let data =
        String.concat ""
          (List.map (Wire.to_wire framing)
             [
               Wire.Open
                 {
                   session = "s";
                   policy = "static";
                   delta = 2;
                   bounds = [| 3; 3 |];
                   n = 6;
                   speed = 1;
                   horizon = 100;
                   queue_limit = 16;
                   decl = None;
                 };
               Wire.Feed
                 { session = "s"; colors = [| 0 |]; counts = [| 2 |]; decl = None };
               Wire.Step { session = "s"; rounds = 5 };
               Wire.Close { session = "s" };
             ])
      in
      ignore
        (check_equivalent framing data
           (List.init (String.length data) (fun _ -> 1))))
    [ Wire.V1; Wire.V2 ]

let prop = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "wire-stream",
      [
        prop prop_equiv_v1;
        prop prop_equiv_v2;
        Alcotest.test_case "overlong /1 line resyncs identically" `Quick
          test_v1_overlong;
        Alcotest.test_case "oversize /2 length resyncs identically" `Quick
          test_v2_oversize_header;
        Alcotest.test_case "framing switch at frame boundary" `Quick
          test_framing_switch;
        Alcotest.test_case "byte-at-a-time conversation" `Quick
          test_byte_at_a_time;
      ] );
  ]
